package control

import (
	"testing"

	"prepare/internal/cloudsim"
	"prepare/internal/detector"
	"prepare/internal/infer"
	"prepare/internal/metrics"
	"prepare/internal/predict"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
	"prepare/internal/workload"
)

// fakeApp is a minimal App implementation with scriptable SLO state and
// one VM whose CPU demand tracks a workload generator.
type fakeApp struct {
	cluster  *cloudsim.Cluster
	vm       cloudsim.VMID
	input    workload.Generator
	violated bool
	metric   float64
}

var _ App = (*fakeApp)(nil)

func (f *fakeApp) Tick(now simclock.Time) {
	vm, err := f.cluster.VM(f.vm)
	if err != nil {
		return
	}
	rate := f.input.Rate(now)
	vm.CPUDemand = rate
	if rate > vm.UsableCPU() {
		vm.CPUUsage = vm.UsableCPU()
		f.violated = true
	} else {
		vm.CPUUsage = rate
		f.violated = false
	}
	vm.WorkingSetMB = 200
	vm.NetInKBps = rate * 10
	vm.NetOutKBps = rate * 9
	vm.DiskReadKBps = 20
	vm.DiskWriteKBs = 10
	f.metric = rate
}

func (f *fakeApp) SLOViolated() bool      { return f.violated }
func (f *fakeApp) SLOMetric() float64     { return f.metric }
func (f *fakeApp) VMIDs() []cloudsim.VMID { return []cloudsim.VMID{f.vm} }

func newFakeWorld(t *testing.T, input workload.Generator) (*cloudsim.Cluster, *cloudsim.Substrate, *fakeApp) {
	t.Helper()
	c := cloudsim.NewCluster()
	if _, err := c.AddDefaultHost("h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDefaultHost("h2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceVM("vm1", "h1", 100, 512); err != nil {
		t.Fatal(err)
	}
	sub, err := cloudsim.NewSubstrate(c, []cloudsim.VMID{"vm1"})
	if err != nil {
		t.Fatal(err)
	}
	return c, sub, &fakeApp{cluster: c, vm: "vm1", input: input}
}

func TestNewValidation(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 50})
	_ = c
	if _, err := New(SchemePREPARE, nil, app, Config{}); err == nil {
		t.Error("nil substrate should fail")
	}
	if _, err := New(SchemePREPARE, sub, nil, Config{}); err == nil {
		t.Error("nil app should fail")
	}
	if _, err := New(Scheme(42), sub, app, Config{}); err == nil {
		t.Error("bad scheme should fail")
	}
}

func TestSchemeStrings(t *testing.T) {
	tests := []struct {
		scheme Scheme
		want   string
	}{
		{SchemeNone, "without-intervention"},
		{SchemeReactive, "reactive"},
		{SchemePREPARE, "prepare"},
	}
	for _, tt := range tests {
		if got := tt.scheme.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.scheme), got, tt.want)
		}
	}
}

func TestNoneSchemeRecordsButNeverActs(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 150}) // always over capacity
	ctl, err := New(SchemeNone, sub, app, Config{TrainAtS: 50, MonitorSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(1); s <= 200; s++ {
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctl.Steps()) != 0 {
		t.Errorf("none scheme executed %d steps", len(ctl.Steps()))
	}
	if ctl.SLOLog().ViolationSeconds(0, 201) == 0 {
		t.Error("violations should have been recorded")
	}
	if ctl.Trained() {
		t.Error("none scheme should not train models")
	}
}

func TestTrainingHappensAtConfiguredTime(t *testing.T) {
	// Load oscillates under capacity, with a violation episode before the
	// training point so labels exist.
	gen := workload.Ramp{Start: 40, Peak: 160, RampFrom: 60, RampTo: 100}
	c, sub, app := newFakeWorld(t, &phased{ramp: gen, backTo: 40, at: 150})
	ctl, err := New(SchemeReactive, sub, app, Config{TrainAtS: 300, MonitorSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(1); s <= 400; s++ {
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
		if s < 300 && ctl.Trained() {
			t.Fatalf("trained too early at %d", s)
		}
	}
	if !ctl.Trained() {
		t.Error("controller never trained")
	}
}

// phased replays a ramp until `at`, then a constant rate.
type phased struct {
	ramp   workload.Generator
	backTo float64
	at     int64
}

func (p *phased) Rate(t simclock.Time) float64 {
	if t.Seconds() >= p.at {
		return p.backTo
	}
	return p.ramp.Rate(t)
}

func TestReactiveActsOnlyAfterPersistentViolation(t *testing.T) {
	// Violation begins at t=350 (after training at 300): overload by an
	// external CPU hog on the VM.
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 60})
	ctl, err := New(SchemeReactive, sub, app, Config{TrainAtS: 300, MonitorSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := c.VM("vm1")
	for s := int64(1); s <= 600; s++ {
		// Create a labeled violation episode during training: t in
		// [100,200) the hog overloads the VM.
		switch {
		case s == 100 || s == 350:
			vm.ExternalCPU = 70
		case s == 200:
			vm.ExternalCPU = 0
		}
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
		if s < 350 && len(ctl.Steps()) > 0 {
			t.Fatalf("reactive acted before the second violation at %d", s)
		}
	}
	steps := ctl.Steps()
	if len(steps) == 0 {
		t.Fatal("reactive never intervened")
	}
	if steps[0].Time.Seconds() < 355 {
		t.Errorf("reactive acted at %v — before the violation persisted", steps[0].Time)
	}
	if steps[0].VM != "vm1" {
		t.Errorf("acted on %s, want vm1", steps[0].VM)
	}
}

func TestPREPAREActsAndRecovers(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 60})
	ctl, err := New(SchemePREPARE, sub, app, Config{TrainAtS: 300, MonitorSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := c.VM("vm1")
	for s := int64(1); s <= 700; s++ {
		switch {
		case s == 100 || s == 400:
			vm.ExternalCPU = 70
		case s == 200 || s == 500:
			vm.ExternalCPU = 0
		}
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctl.Steps()) == 0 {
		t.Fatal("PREPARE never intervened on the recurrent fault")
	}
	// After the action, capacity exceeds demand+hog and the violation
	// clears; the second injection window should show far less violation
	// than the first (which was unprotected training data).
	log := ctl.SLOLog()
	first := log.ViolationSeconds(100, 200)
	second := log.ViolationSeconds(400, 500)
	if second >= first {
		t.Errorf("PREPARE violation %ds not better than unprotected %ds", second, first)
	}
	// Alerts carry the Predicted marker.
	for _, a := range ctl.Alerts() {
		if !a.Predicted {
			t.Error("PREPARE alerts must be marked predicted")
		}
	}
}

func TestRelabelForTrainingGatesNonDeviatingRows(t *testing.T) {
	// 100 baseline rows around 100±1, then 20 "violation" rows: half
	// deviate on two columns, half do not.
	var rows [][]float64
	var labels []metrics.Label
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{100 + float64(i%3-1)*0.8, 50 + float64(i%5-2)*0.4})
		labels = append(labels, metrics.LabelNormal)
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{100, 50}) // no deviation
		labels = append(labels, metrics.LabelAbnormal)
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{200, 90}) // both columns deviate
		labels = append(labels, metrics.LabelAbnormal)
	}
	predict.RelabelForTraining(rows, labels, 4)
	for i := 100; i < 110; i++ {
		if labels[i] != metrics.LabelNormal {
			t.Errorf("row %d (no deviation) kept abnormal label", i)
		}
	}
	for i := 110; i < 120; i++ {
		if labels[i] != metrics.LabelAbnormal {
			t.Errorf("row %d (deviating) lost abnormal label", i)
		}
	}
}

func TestRelabelForTrainingExtendsPreAnomalyWindow(t *testing.T) {
	var rows [][]float64
	var labels []metrics.Label
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{100 + float64(i%3-1)*0.8, 50 + float64(i%5-2)*0.4})
		labels = append(labels, metrics.LabelNormal)
	}
	// 6 deviating-but-normal drift rows, then a sustained abnormal
	// episode (long enough to pass the minimum-support check).
	for i := 0; i < 6; i++ {
		rows = append(rows, []float64{150 + float64(i)*10, 70 + float64(i)*4})
		labels = append(labels, metrics.LabelNormal)
	}
	for i := 0; i < 8; i++ {
		rows = append(rows, []float64{220 + float64(i), 95})
		labels = append(labels, metrics.LabelAbnormal)
	}

	predict.RelabelForTraining(rows, labels, 4)
	// The 4 drift rows immediately before the onset become abnormal.
	for i := 102; i < 106; i++ {
		if labels[i] != metrics.LabelAbnormal {
			t.Errorf("drift row %d not extended to abnormal", i)
		}
	}
	// Rows beyond the lookback stay normal.
	if labels[100] != metrics.LabelNormal || labels[101] != metrics.LabelNormal {
		t.Error("extension went past the lookback window")
	}
}

func TestRelabelForTrainingSmallBaseline(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	labels := []metrics.Label{metrics.LabelNormal, metrics.LabelAbnormal}
	predict.RelabelForTraining(rows, labels, 4) // must not panic or relabel
	if labels[1] != metrics.LabelAbnormal {
		t.Error("tiny datasets must keep their labels")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SamplingIntervalS != 5 || cfg.LookaheadS != 120 ||
		cfg.FilterK != 3 || cfg.FilterW != 4 || cfg.ValidationDelayS != 15 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Predict.SamplingIntervalS != 5 {
		t.Error("predictor sampling interval must follow the monitor's")
	}
}

// TestPeriodicRetrainingAdapts verifies the paper's "periodically
// updated" behaviour: a fault class first seen only AFTER the initial
// training becomes predictable once the models retrain, so the third
// occurrence is handled even though the first post-training occurrence
// was unknown at initial training time.
func TestPeriodicRetrainingAdapts(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 60})
	ctl, err := New(SchemePREPARE, sub, app, Config{
		TrainAtS:         200, // trained before ANY fault has occurred
		RetrainIntervalS: 200,
		MonitorSeed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := c.VM("vm1")
	for s := int64(1); s <= 1000; s++ {
		switch {
		case s == 300 || s == 700:
			vm.ExternalCPU = 70 // fault occurrences, both after training
		case s == 400 || s == 800:
			vm.ExternalCPU = 0
		}
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
	}
	log := ctl.SLOLog()
	first := log.ViolationSeconds(300, 400)
	second := log.ViolationSeconds(700, 800)
	if first == 0 {
		t.Fatal("first occurrence should have violated (models untrained on it)")
	}
	if second >= first {
		t.Errorf("after retraining, second occurrence (%ds) should improve on first (%ds)",
			second, first)
	}
}

// TestNoRetrainingStaysBlind is the control for the test above: without
// periodic retraining, the initially clean models never learn the fault.
func TestNoRetrainingStaysBlind(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 60})
	ctl, err := New(SchemePREPARE, sub, app, Config{
		TrainAtS:    200,
		MonitorSeed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := c.VM("vm1")
	for s := int64(1); s <= 1000; s++ {
		switch {
		case s == 300 || s == 700:
			vm.ExternalCPU = 70
		case s == 400 || s == 800:
			vm.ExternalCPU = 0
		}
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctl.Steps()) != 0 {
		t.Errorf("models trained on clean data only should never act, got %d steps", len(ctl.Steps()))
	}
}

// TestUnsupervisedModeFirstOccurrence: in unsupervised mode the
// controller trains on clean data only and still prevents the first
// occurrence of an overload.
func TestUnsupervisedModeFirstOccurrence(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 60})
	ctl, err := New(SchemePREPARE, sub, app, Config{
		TrainAtS:     200, // trained before any fault
		Unsupervised: true,
		MonitorSeed:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := c.VM("vm1")
	for s := int64(1); s <= 600; s++ {
		switch {
		case s == 300:
			vm.ExternalCPU = 70 // first-ever fault
		case s == 450:
			vm.ExternalCPU = 0
		}
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
	}
	if !ctl.Trained() {
		t.Fatal("controller never trained")
	}
	if len(ctl.Steps()) == 0 {
		t.Fatal("unsupervised PREPARE never acted on the first occurrence")
	}
	// The violation window should be shorter than the fault window.
	violated := ctl.SLOLog().ViolationSeconds(300, 450)
	if violated > 100 {
		t.Errorf("unsupervised prevention left %ds of violation in a 150s fault", violated)
	}
}

// TestUnsupervisedReactiveMode exercises the reactive + unsupervised
// combination (detector evaluates current states only).
func TestUnsupervisedReactiveMode(t *testing.T) {
	c, sub, app := newFakeWorld(t, workload.Constant{Value: 60})
	ctl, err := New(SchemeReactive, sub, app, Config{
		TrainAtS:     200,
		Unsupervised: true,
		MonitorSeed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := c.VM("vm1")
	for s := int64(1); s <= 600; s++ {
		switch {
		case s == 300:
			vm.ExternalCPU = 70
		case s == 450:
			vm.ExternalCPU = 0
		}
		app.Tick(simclock.Time(s))
		c.Tick(simclock.Time(s))
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ctl.Steps()) == 0 {
		t.Fatal("reactive unsupervised mode never acted")
	}
	if ctl.Steps()[0].Time.Seconds() < 300 {
		t.Errorf("reactive acted at %v — before any violation", ctl.Steps()[0].Time)
	}
}

// TestTargetsOrderingAndPropagationFilter pins the unified-verdict
// targeting semantics: confirmed VMs are returned in canonical vmOrder
// (never map-iteration order), downstream victims whose alert episode
// started later than the faulty VM are filtered out, and a persistent
// real violation disables the onset filter so every alerting VM gets
// relief.
func TestTargetsOrderingAndPropagationFilter(t *testing.T) {
	vms := []substrate.VMID{"vm1", "vm2", "vm3"}
	wd, err := infer.NewWorkloadDetector(vms, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := &Controller{
		cfg:          Config{SamplingIntervalS: 5}.withDefaults(),
		vmOrder:      vms,
		lastAlert:    make(map[substrate.VMID]simclock.Time),
		episodeOnset: make(map[substrate.VMID]simclock.Time),
		workload:     wd,
	}
	confirmed := func(ids ...substrate.VMID) map[substrate.VMID]detector.Verdict {
		m := make(map[substrate.VMID]detector.Verdict, len(ids))
		for _, id := range ids {
			m[id] = detector.Verdict{Abnormal: true, Score: 3}
		}
		return m
	}
	equal := func(got, want []substrate.VMID) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("targets %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("targets %v, want %v", got, want)
			}
		}
	}

	// t=100: vm2's episode starts.
	equal(c.targets(100, confirmed("vm2")), []substrate.VMID{"vm2"})
	// t=105: vm3 joins within one sampling interval of the earliest
	// onset — both act, in canonical order regardless of map order.
	equal(c.targets(105, confirmed("vm3", "vm2")), []substrate.VMID{"vm2", "vm3"})
	// t=110: vm1's onset is 10s after the earliest — a downstream
	// victim, filtered out.
	equal(c.targets(110, confirmed("vm1", "vm2", "vm3")), []substrate.VMID{"vm2", "vm3"})
	// A persistent real violation disables the onset filter.
	c.violatedStreak = c.cfg.FilterK
	equal(c.targets(115, confirmed("vm1", "vm2", "vm3")), []substrate.VMID{"vm1", "vm2", "vm3"})
	c.violatedStreak = 0
	// After a quiet gap the next alert starts a fresh episode.
	equal(c.targets(200, confirmed("vm3")), []substrate.VMID{"vm3"})
}

// TestBusiestVMUnifiedVerdict pins the reactive fallback's unified
// detector path: the busiest VM is picked by CPU sample and classified
// through the same Detector.Current call every scheme uses.
func TestBusiestVMUnifiedVerdict(t *testing.T) {
	names := predict.AttributeNames()
	vms := []substrate.VMID{"vm1", "vm2"}
	dets := make(map[substrate.VMID]detector.Detector, len(vms))
	for _, id := range vms {
		e := detector.NewEWMA(len(names), detector.EWMAOptions{})
		rows := make([][]float64, 40)
		for i := range rows {
			rows[i] = make([]float64, len(names))
			for j := range rows[i] {
				rows[i][j] = 10 + float64(i%5)
			}
		}
		if err := e.Train(rows, nil); err != nil {
			t.Fatal(err)
		}
		dets[id] = e
	}
	c := &Controller{
		cfg:        Config{}.withDefaults(),
		vmOrder:    vms,
		detectors:  dets,
		attrNames:  names,
		rowScratch: make([]float64, len(names)),
	}

	samples := make(map[substrate.VMID]metrics.Sample)
	for i, id := range vms {
		var sm metrics.Sample
		for j := range sm.Values {
			sm.Values[j] = 10
		}
		sm.Values.Set(metrics.CPUTotal, float64(13+i)) // vm2 busiest, both in-range
		samples[id] = sm
	}
	id, verdict, ok := c.busiestVM(samples)
	if !ok || id != "vm2" {
		t.Fatalf("busiestVM = %v ok=%v, want vm2", id, ok)
	}
	if verdict.Abnormal {
		t.Fatalf("near-baseline sample classified abnormal: %+v", verdict)
	}

	// A wildly deviant busiest VM yields an abnormal unified verdict
	// with attribution strengths.
	var sm metrics.Sample
	for j := range sm.Values {
		sm.Values[j] = 500
	}
	sm.Values.Set(metrics.CPUTotal, 99)
	samples["vm2"] = sm
	if _, verdict, ok = c.busiestVM(samples); !ok || !verdict.Abnormal || len(verdict.Strengths) == 0 {
		t.Fatalf("deviant sample verdict %+v ok=%v, want abnormal with strengths", verdict, ok)
	}
}
