package experiment

import (
	"fmt"
	"io"

	"prepare/internal/control"
	"prepare/internal/faults"
	"prepare/internal/prevent"
)

// ReportOptions tunes the full-evaluation report.
type ReportOptions struct {
	// Seeds is the number of repetitions for the violation-time figures
	// (default 3; the paper uses 5).
	Seeds int
	// Seed is the base random seed (default 100).
	Seed int64
	// SkipMigration drops the Figure 8 section (halves the runtime).
	SkipMigration bool
}

// WriteReport runs the paper's full evaluation and writes a markdown
// report with every figure and table, mirroring EXPERIMENTS.md but from
// live runs. It is the one-command reproducibility artifact:
//
//	go run ./cmd/preparesim -experiment report > report.md
func WriteReport(w io.Writer, opts ReportOptions) error {
	if opts.Seeds == 0 {
		opts.Seeds = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 100
	}

	fmt.Fprintf(w, "# PREPARE reproduction report\n\n")
	fmt.Fprintf(w, "Seeds %d..%d, %d repetitions per violation-time cell.\n\n",
		opts.Seed, opts.Seed+int64(opts.Seeds)-1, opts.Seeds)

	// Figure 6.
	cells, err := FigureSLOViolation(prevent.ScalingFirst, opts.Seeds, opts.Seed)
	if err != nil {
		return fmt.Errorf("experiment: report fig6: %w", err)
	}
	fmt.Fprint(w, "## Figure 6 — SLO violation time (scaling)\n\n```\n")
	fmt.Fprint(w, FormatViolationCells("", cells))
	fmt.Fprint(w, "```\n\n")

	// Figure 8.
	if !opts.SkipMigration {
		cells, err = FigureSLOViolation(prevent.MigrationOnly, opts.Seeds, opts.Seed)
		if err != nil {
			return fmt.Errorf("experiment: report fig8: %w", err)
		}
		fmt.Fprint(w, "## Figure 8 — SLO violation time (migration)\n\n```\n")
		fmt.Fprint(w, FormatViolationCells("", cells))
		fmt.Fprint(w, "```\n\n")
	}

	// Figure 7(a): the memleak/System S trace close-up.
	series, err := FigureTraces(SystemS, faults.MemoryLeak, prevent.ScalingFirst, opts.Seed)
	if err != nil {
		return fmt.Errorf("experiment: report fig7: %w", err)
	}
	fmt.Fprint(w, "## Figure 7(a) — throughput trace, memleak / System S (scaling)\n\n```\n")
	fmt.Fprint(w, FormatTraces("", "Ktuples/s", series, 20))
	fmt.Fprint(w, "```\n\n")

	// Figure 10.
	curves, err := FigurePerComponentVsMonolithic(SystemS, faults.MemoryLeak, opts.Seed)
	if err != nil {
		return fmt.Errorf("experiment: report fig10: %w", err)
	}
	fmt.Fprint(w, "## Figure 10 — per-component vs monolithic (memleak / System S)\n\n```\n")
	fmt.Fprint(w, FormatAccuracyCurves("", curves))
	fmt.Fprint(w, "```\n\n")

	// Figure 11 (the paper's 11(b) cell).
	curves, err = FigureMarkovComparison(RUBiS, faults.Bottleneck, opts.Seed)
	if err != nil {
		return fmt.Errorf("experiment: report fig11: %w", err)
	}
	fmt.Fprint(w, "## Figure 11 — 2-dep vs simple Markov (bottleneck / RUBiS)\n\n```\n")
	fmt.Fprint(w, FormatAccuracyCurves("", curves))
	fmt.Fprint(w, "```\n\n")

	// Figure 12.
	curves, err = FigureAlarmFiltering(opts.Seed)
	if err != nil {
		return fmt.Errorf("experiment: report fig12: %w", err)
	}
	fmt.Fprint(w, "## Figure 12 — alarm filter settings (bottleneck / RUBiS)\n\n```\n")
	fmt.Fprint(w, FormatAccuracyCurves("", curves))
	fmt.Fprint(w, "```\n\n")

	// Figure 13.
	curves, err = FigureSamplingInterval(opts.Seed)
	if err != nil {
		return fmt.Errorf("experiment: report fig13: %w", err)
	}
	fmt.Fprint(w, "## Figure 13 — sampling intervals (bottleneck / RUBiS)\n\n```\n")
	fmt.Fprint(w, FormatAccuracyCurves("", curves))
	fmt.Fprint(w, "```\n\n")

	// Table I.
	rows, err := Table1(100)
	if err != nil {
		return fmt.Errorf("experiment: report table1: %w", err)
	}
	fmt.Fprint(w, "## Table I — system overhead\n\n```\n")
	fmt.Fprint(w, FormatTable1(rows))
	fmt.Fprint(w, "```\n\n")

	// Extension: first-occurrence prevention.
	fmt.Fprint(w, "## Extension — unseen anomalies (Section V)\n\n```\n")
	base := Scenario{App: RUBiS, Fault: faults.MemoryLeak, Seed: opts.Seed, SkipFirstInjection: true}
	variants := []struct {
		name         string
		scheme       control.Scheme
		unsupervised bool
	}{
		{"without-intervention", control.SchemeNone, false},
		{"prepare-supervised", control.SchemePREPARE, false},
		{"prepare-unsupervised", control.SchemePREPARE, true},
	}
	scenarios := make([]Scenario, len(variants))
	for i, variant := range variants {
		scenarios[i] = base
		scenarios[i].Scheme = variant.scheme
		scenarios[i].Unsupervised = variant.unsupervised
	}
	results, err := RunAll(scenarios, BatchOptions{})
	if err != nil {
		return fmt.Errorf("experiment: report unseen: %w", err)
	}
	for i, variant := range variants {
		fmt.Fprintf(w, "%-24s violation %4ds, actions %d\n",
			variant.name, results[i].EvalViolationSeconds, len(results[i].Steps))
	}
	fmt.Fprint(w, "```\n")
	return nil
}
