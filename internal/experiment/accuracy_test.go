package experiment

import (
	"testing"

	"prepare/internal/faults"
	"prepare/internal/predict"
)

func collectTestDataset(t *testing.T) Dataset {
	t.Helper()
	ds, err := CollectDataset(Scenario{App: RUBiS, Fault: faults.MemoryLeak, Seed: 7})
	if err != nil {
		t.Fatalf("CollectDataset: %v", err)
	}
	return ds
}

func TestCollectDataset(t *testing.T) {
	ds := collectTestDataset(t)
	if len(ds.Order) != 4 {
		t.Fatalf("dataset has %d VMs, want 4", len(ds.Order))
	}
	if ds.FaultTarget != "vm-db" {
		t.Errorf("fault target = %s", ds.FaultTarget)
	}
	train, test, err := ds.split("vm-db")
	if err != nil {
		t.Fatal(err)
	}
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	for _, sm := range train {
		if sm.Time.Seconds() >= ds.TrainAtS {
			t.Fatal("train sample after split point")
		}
	}
}

func TestAccuracySweepPerComponent(t *testing.T) {
	ds := collectTestDataset(t)
	points, err := AccuracySweep(ds, []int64{10, 30}, AccuracyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Confusion.Total() == 0 {
			t.Errorf("lookahead %d: no scored predictions", p.LookaheadS)
		}
		if p.AT < 0 || p.AT > 1 || p.AF < 0 || p.AF > 1 {
			t.Errorf("lookahead %d: rates out of range AT=%f AF=%f", p.LookaheadS, p.AT, p.AF)
		}
	}
	// A gradual memory leak must be predictable with decent accuracy at a
	// short look-ahead.
	if points[0].AT < 0.5 {
		t.Errorf("A_T at 10s = %.2f, want >= 0.5", points[0].AT)
	}
}

func TestAccuracySweepMonolithicWorse(t *testing.T) {
	ds := collectTestDataset(t)
	per, err := AccuracySweep(ds, []int64{15, 30, 45}, AccuracyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := AccuracySweep(ds, []int64{15, 30, 45}, AccuracyOptions{Monolithic: true})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 10 finding: per-component accuracy clearly beats
	// the monolithic model. Compare average A_T - A_F quality.
	quality := func(points []AccuracyPoint) float64 {
		q := 0.0
		for _, p := range points {
			q += p.AT - p.AF
		}
		return q / float64(len(points))
	}
	if quality(per) <= quality(mono) {
		t.Errorf("per-component quality %.3f should beat monolithic %.3f",
			quality(per), quality(mono))
	}
}

func TestAccuracySweepValidation(t *testing.T) {
	ds := collectTestDataset(t)
	if _, err := AccuracySweep(Dataset{}, []int64{10}, AccuracyOptions{}); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := AccuracySweep(ds, nil, AccuracyOptions{}); err == nil {
		t.Error("no lookaheads should fail")
	}
}

func TestAccuracyFilteringReducesFalseAlarms(t *testing.T) {
	ds, err := CollectDataset(Scenario{App: RUBiS, Fault: faults.Bottleneck, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := AccuracySweep(ds, []int64{20}, AccuracyOptions{FilterK: 1, FilterW: 4})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := AccuracySweep(ds, []int64{20}, AccuracyOptions{FilterK: 3, FilterW: 4})
	if err != nil {
		t.Fatal(err)
	}
	if filtered[0].AF > raw[0].AF+1e-9 {
		t.Errorf("k=3 A_F %.3f should not exceed k=1 A_F %.3f", filtered[0].AF, raw[0].AF)
	}
}

func TestDefaultLookaheads(t *testing.T) {
	las := DefaultLookaheads()
	if len(las) != 9 || las[0] != 5 || las[8] != 45 {
		t.Errorf("lookaheads = %v", las)
	}
}

func TestSimpleVsTwoDepSweep(t *testing.T) {
	ds := collectTestDataset(t)
	twoDep, err := AccuracySweep(ds, []int64{30, 45}, AccuracyOptions{
		Predict: predict.Config{Order: predict.TwoDependent},
	})
	if err != nil {
		t.Fatal(err)
	}
	simple, err := AccuracySweep(ds, []int64{30, 45}, AccuracyOptions{
		Predict: predict.Config{Order: predict.SimpleMarkov},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(twoDep) != 2 || len(simple) != 2 {
		t.Fatal("sweep lengths wrong")
	}
}
