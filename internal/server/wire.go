package server

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"prepare/internal/substrate"
	"prepare/internal/telemetry"
	"prepare/internal/wire"
)

// ErrBadFrame: the binary ingest body is not a valid columnar frame.
// Mapped to 400 by the API layer.
var ErrBadFrame = errors.New("server: malformed binary frame")

// decodeState is the pooled per-frame scratch that carries a decoded
// columnar batch from the ingest goroutine to the shard worker without
// materializing intermediate sample structs: the frame buffer, the
// decode arena whose column slices alias nothing outside the state, and
// the dictionary resolved to interned VM IDs. Ownership passes to the
// shard queue on enqueue; the worker returns it to the pool after the
// apply stage.
type decodeState struct {
	buf   []byte // frame payload; the arena's batch aliases it
	arena wire.Arena
	vms   []substrate.VMID // resolved VM-ID dictionary
}

var decodePool = sync.Pool{New: func() any { return new(decodeState) }}

func putDecodeState(ds *decodeState) { decodePool.Put(ds) }

// StreamResult summarizes one streaming ingest connection.
type StreamResult struct {
	Frames      int `json:"frames"`
	Accepted    int `json:"accepted"`
	Rejected    int `json:"rejected"`
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// IngestFrame ingests one length-prefixed binary columnar frame — the
// binary counterpart of Ingest, callable in-process by the load
// generator. The frame bytes are copied into pooled scratch, decoded
// through the arena, validated, and enqueued whole; the shard worker
// appends straight from the column slices.
func (s *Server) IngestFrame(frame []byte) (IngestResult, error) {
	var res IngestResult
	payload, err := wire.Payload(frame)
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	ds := decodePool.Get().(*decodeState)
	ds.buf = append(ds.buf[:0], payload...)
	return s.ingestDecoded(ds)
}

// IngestStream drains a sequence of length-prefixed frames from r —
// the body of a long-lived streaming connection — ingesting each as it
// arrives. Backpressure rejects individual frames and keeps reading;
// structural errors (malformed frame, unknown tenant, oversized batch)
// stop the stream. A connection dropped mid-frame returns
// io.ErrUnexpectedEOF with every complete prior frame already applied,
// so the pipeline stays consistent: framing makes partial writes
// detectable, and frames are all-or-nothing.
func (s *Server) IngestStream(r io.Reader) (StreamResult, error) {
	var res StreamResult
	maxFrame := int(s.cfg.MaxBodyBytes)
	var scratch []byte
	for {
		payload, err := wire.ReadFrame(r, scratch, maxFrame)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			if errors.Is(err, wire.ErrFrame) || errors.Is(err, wire.ErrFrameTooLarge) {
				return res, fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			return res, io.ErrUnexpectedEOF
		}
		scratch = payload[:0]
		ds := decodePool.Get().(*decodeState)
		ds.buf = append(ds.buf[:0], payload...)
		one, err := s.ingestDecoded(ds)
		res.Frames++
		res.Accepted += one.Accepted
		res.Rejected += one.Rejected
		if err != nil {
			if errors.Is(err, ErrBackpressure) {
				res.RetryAfterS = one.RetryAfterS
				continue // open loop: the frame is rejected, the stream lives
			}
			return res, err
		}
	}
}

// ingestDecoded decodes ds.buf, validates the batch against the tenant,
// and enqueues it. On any return path that does not enqueue, ds goes
// back to the pool. The whole path performs no per-sample allocation:
// the tenant and VM lookups use the compiler's zero-alloc
// map[string]-with-byte-slice-key form against interned IDs.
func (s *Server) ingestDecoded(ds *decodeState) (IngestResult, error) {
	var res IngestResult
	start := time.Now()
	b, err := wire.DecodeBatch(ds.buf, &ds.arena)
	if err != nil {
		putDecodeState(ds)
		return res, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	s.tel.decodeLatency.ObserveSince(start)
	t := s.tenants[string(b.Tenant)]
	if t == nil {
		putDecodeState(ds)
		return res, fmt.Errorf("%w: %q", ErrUnknownTenant, b.Tenant)
	}
	n := b.Rows()
	if n > s.cfg.MaxBatchSamples {
		putDecodeState(ds)
		return res, fmt.Errorf("%w: %d samples exceed the %d-sample limit", ErrBatchTooLarge, n, s.cfg.MaxBatchSamples)
	}
	if cap(ds.vms) < len(b.VMs) {
		ds.vms = make([]substrate.VMID, len(b.VMs))
	}
	ds.vms = ds.vms[:len(b.VMs)]
	for i, id := range b.VMs {
		vm, ok := t.intern[string(id)]
		if !ok {
			putDecodeState(ds)
			return res, fmt.Errorf("%w: tenant %q has no VM %q", ErrBadBatch, t.id, id)
		}
		ds.vms[i] = vm
	}

	it := item{kind: itemColumnar, tenant: t, ds: ds, enqueuedAt: time.Now()}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.state != stateRunning {
		putDecodeState(ds)
		return res, ErrNotRunning
	}
	sh := s.shards[t.shardIdx]
	select {
	case sh.queue <- it:
		res.Accepted = n
		s.tel.depth(sh.idx, len(sh.queue))
	default:
		res.Rejected = n
		s.batchesRejected.Add(1)
		s.tel.backpressure.Inc()
		if s.tel.reg != nil {
			s.tel.reg.Emit(b.TickFirst, "", telemetry.StageServer, telemetry.KindBackpressure,
				t.id, telemetry.F("samples", float64(n)))
		}
		putDecodeState(ds)
	}
	s.binaryFrames.Add(1)
	s.samplesAccepted.Add(int64(res.Accepted))
	s.samplesRejected.Add(int64(res.Rejected))
	s.tel.batches.Inc()
	s.tel.frames.Inc()
	s.tel.samplesAccepted.Add(int64(res.Accepted))
	s.tel.samplesRejected.Add(int64(res.Rejected))
	if res.Rejected > 0 {
		res.RetryAfterS = s.cfg.RetryAfterS
		return res, ErrBackpressure
	}
	return res, nil
}
