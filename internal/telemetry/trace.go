package telemetry

import "sync"

// Canonical event stages, one per control-loop module.
const (
	StageMonitor    = "monitor"
	StagePredict    = "predict"
	StageInfer      = "infer"
	StagePrevent    = "prevent"
	StageControl    = "control"
	StageExperiment = "experiment"
	StageServer     = "server"
)

// Canonical event kinds emitted by the instrumented control loop.
const (
	// KindPredictionWindow: a look-ahead window scored above the alert
	// margin (a raw predictive alert, before filtering).
	KindPredictionWindow = "prediction-window"
	// KindAlertFiltered: a raw alert the k-of-W filter suppressed.
	KindAlertFiltered = "alert-filtered"
	// KindAlertRaised: a confirmed anomaly alert.
	KindAlertRaised = "alert-raised"
	// KindCauseRanked: the TAN attribution ranked a faulty VM's metrics.
	KindCauseRanked = "cause-ranked"
	// KindScalingApplied: an elastic scaling prevention was executed.
	KindScalingApplied = "scaling-applied"
	// KindMigration: a live-migration prevention was executed.
	KindMigration = "migration"
	// KindValidationRollback: online validation judged a prevention
	// ineffective; the next ranked metric will be tried.
	KindValidationRollback = "validation-rollback"
	// KindDegraded: the loop skipped or deferred part of a step because
	// the substrate failed underneath it (dropped samples, transient
	// actuator errors) and kept going instead of aborting.
	KindDegraded = "degraded"
	// KindRetryScheduled: a transient actuator failure was absorbed and
	// the prevention attempt was rescheduled after a sim-clock backoff.
	KindRetryScheduled = "retry-scheduled"
	// KindBackpressure: the ingest server rejected a batch because a
	// shard queue was full (HTTP 429 + Retry-After).
	KindBackpressure = "backpressure"
	// KindCheckpoint: the ingest server captured a model-snapshot
	// checkpoint for warm failover.
	KindCheckpoint = "checkpoint"
)

// Field is one numeric key/value annotation on an event.
type Field struct {
	Key   string  `json:"k"`
	Value float64 `json:"v"`
}

// F builds a Field.
func F(key string, value float64) Field { return Field{Key: key, Value: value} }

// Event is one structured trace record.
type Event struct {
	// Seq is the emission sequence number within the trace (survives
	// ring wraparound, so gaps reveal overwritten history).
	Seq uint64 `json:"seq"`
	// SimTime is the simulated instant in seconds.
	SimTime int64 `json:"t"`
	// VM names the virtual machine concerned, if any.
	VM string `json:"vm,omitempty"`
	// Stage is the control-loop module (Stage* constants).
	Stage string `json:"stage"`
	// Kind is the event type (Kind* constants).
	Kind string `json:"kind"`
	// Detail is a short free-form annotation (e.g. "cpu->150%").
	Detail string `json:"detail,omitempty"`
	// Fields carries numeric annotations (scores, strengths, counts).
	Fields []Field `json:"fields,omitempty"`
}

// Trace is a bounded ring buffer of events. Emission is O(1); once the
// buffer is full the oldest events are overwritten and counted as
// dropped. A nil *Trace is valid and no-ops.
type Trace struct {
	mu      sync.Mutex
	ring    []Event
	next    int // ring index of the next write
	size    int // number of valid events (≤ len(ring))
	seq     uint64
	dropped uint64
}

func newTrace(capacity int) *Trace {
	return &Trace{ring: make([]Event, capacity)}
}

// Emit appends the event, assigning its sequence number.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if t.size == len(t.ring) {
		t.dropped++
	} else {
		t.size++
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// Events returns the retained events in emission order (oldest first).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.size)
	start := t.next - t.size
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped returns how many events were overwritten by wraparound.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
