package predict

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func trainedPredictor(t *testing.T) *Predictor {
	t.Helper()
	rows, labels := leakTrace(200, 30)
	p, err := New(Config{Bins: 10}, []string{"free_mem", "noise"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := trainedPredictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !q.Trained() {
		t.Fatal("loaded predictor not trained")
	}
	if got := q.Names(); len(got) != 2 || got[0] != "free_mem" {
		t.Errorf("names = %v", got)
	}

	// Identical behaviour on identical inputs.
	testRows, _ := leakTrace(200, 31)
	for i, row := range testRows {
		if err := p.Observe(row); err != nil {
			t.Fatal(err)
		}
		if err := q.Observe(row); err != nil {
			t.Fatal(err)
		}
		if i%17 != 0 {
			continue
		}
		vp, err := p.Predict(4)
		if err != nil {
			t.Fatal(err)
		}
		vq, err := q.Predict(4)
		if err != nil {
			t.Fatal(err)
		}
		if vp.Abnormal != vq.Abnormal || math.Abs(vp.Score-vq.Score) > 1e-9 {
			t.Fatalf("step %d: original %v/%.4f vs loaded %v/%.4f",
				i, vp.Abnormal, vp.Score, vq.Abnormal, vq.Score)
		}
	}
}

func TestSaveUntrainedFails(t *testing.T) {
	p, err := New(Config{}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != ErrNotTrained {
		t.Errorf("Save untrained = %v, want ErrNotTrained", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":    "hello",
		"bad version": `{"version":99,"names":["a"]}`,
		"no names":    `{"version":1,"names":[]}`,
		"mismatch":    `{"version":1,"names":["a","b"],"discretizers":[],"chains":[]}`,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(data)); err == nil {
				t.Error("garbage snapshot should fail to load")
			}
		})
	}
}

func TestLoadRejectsCorruptedModel(t *testing.T) {
	p := trainedPredictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt a probability to an invalid value.
	data := strings.Replace(buf.String(), `"total":`, `"total":-`, 1)
	if _, err := Load(strings.NewReader(data)); err == nil {
		t.Error("negative class total should fail validation")
	}
}

func TestSaveLoadSimpleChainVariant(t *testing.T) {
	rows, labels := leakTrace(150, 32)
	p, err := New(Config{Order: SimpleMarkov, Bins: 8}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Config().Order != SimpleMarkov {
		t.Errorf("loaded order = %v", q.Config().Order)
	}
	if _, err := q.PredictWindow(60); err != nil {
		t.Fatal(err)
	}
}
