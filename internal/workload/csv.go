package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"prepare/internal/simclock"
)

// Point is one (time, rate) observation of a workload trace.
type Point struct {
	Time simclock.Time
	Rate float64
}

// Sample evaluates the generator once per second over [0, horizon).
func Sample(g Generator, horizon int64) []Point {
	points := make([]Point, 0, horizon)
	for t := int64(0); t < horizon; t++ {
		st := simclock.Time(t)
		points = append(points, Point{Time: st, Rate: g.Rate(st)})
	}
	return points
}

// WriteCSV writes points as "time_s,rate" rows with a header.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "rate"}); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	for _, p := range points {
		row := []string{
			strconv.FormatInt(p.Time.Seconds(), 10),
			strconv.FormatFloat(p.Rate, 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses rows written by WriteCSV.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	points := make([]Point, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != 2 {
			return nil, fmt.Errorf("workload: row %d has %d fields, want 2", i+2, len(rec))
		}
		sec, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d time: %w", i+2, err)
		}
		rate, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d rate: %w", i+2, err)
		}
		points = append(points, Point{Time: simclock.Time(sec), Rate: rate})
	}
	return points, nil
}

// Replay is a Generator backed by a recorded trace. Queries past the end
// of the trace return the final rate; queries before the start return the
// first rate.
type Replay struct {
	points []Point
}

var _ Generator = (*Replay)(nil)

// NewReplay builds a Replay from points, which must be non-empty and
// sorted by time.
func NewReplay(points []Point) (*Replay, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: replay needs at least one point")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Time.Before(points[i-1].Time) {
			return nil, fmt.Errorf("workload: replay points not sorted at index %d", i)
		}
	}
	cp := make([]Point, len(points))
	copy(cp, points)
	return &Replay{points: cp}, nil
}

// Rate implements Generator via step interpolation.
func (r *Replay) Rate(t simclock.Time) float64 {
	if t.Before(r.points[0].Time) {
		return r.points[0].Rate
	}
	// Linear scan is fine: traces are replayed sequentially and are short.
	for i := len(r.points) - 1; i >= 0; i-- {
		if !t.Before(r.points[i].Time) {
			return r.points[i].Rate
		}
	}
	return r.points[len(r.points)-1].Rate
}
