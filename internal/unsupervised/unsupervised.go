// Package unsupervised implements the anomaly detectors the paper
// proposes as its extension for unseen anomalies (Section V): since the
// supervised TAN classifier can only recognize recurrent anomalies it
// has been trained on, PREPARE can instead "replace the supervised
// classification method with unsupervised classifiers (e.g., clustering
// and outlier detection)".
//
// Two detectors are provided:
//
//   - KMeans: clusters the (robustly normalized) normal operating states
//     and scores a new state by its distance to the nearest centroid.
//   - ZScore: per-attribute robust z-scores (median/MAD baseline); the
//     anomaly score counts attributes that deviate strongly.
//
// Both are fitted on unlabeled data presumed to be mostly normal, and
// both calibrate their alarm threshold from the training score
// distribution, so no labeled anomalies are required.
package unsupervised

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Detector scores the anomalousness of observation rows. Scores are
// non-negative; Anomalous applies the calibrated threshold.
type Detector interface {
	// Score returns the anomaly score of a row (higher = more anomalous).
	Score(row []float64) (float64, error)
	// Anomalous reports whether the row's score exceeds the calibrated
	// threshold.
	Anomalous(row []float64) (bool, error)
	// Threshold returns the calibrated alarm threshold.
	Threshold() float64
	// Contributions returns each attribute's share of the row's anomaly
	// score (higher = more implicated), used for cause inference when no
	// supervised attribution is available.
	Contributions(row []float64) ([]float64, error)
}

// Errors shared by the detectors.
var (
	ErrNoData = errors.New("unsupervised: no training data")
	ErrShape  = errors.New("unsupervised: row shape mismatch")
)

// normalizer scales columns by robust statistics so distances are
// comparable across attributes with wildly different units.
type normalizer struct {
	center []float64
	scale  []float64
}

func fitNormalizer(rows [][]float64) (*normalizer, error) {
	if len(rows) == 0 {
		return nil, ErrNoData
	}
	nCols := len(rows[0])
	n := &normalizer{
		center: make([]float64, nCols),
		scale:  make([]float64, nCols),
	}
	col := make([]float64, len(rows))
	for j := 0; j < nCols; j++ {
		for i, row := range rows {
			if len(row) != nCols {
				return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(row), nCols)
			}
			col[i] = row[j]
		}
		n.center[j] = median(col)
		devs := make([]float64, len(col))
		for i, v := range col {
			devs[i] = math.Abs(v - n.center[j])
		}
		n.scale[j] = 1.4826 * median(devs)
		if n.scale[j] < 1e-9 {
			n.scale[j] = 1e-9
		}
	}
	return n, nil
}

func (n *normalizer) apply(row []float64) ([]float64, error) {
	if len(row) != len(n.center) {
		return nil, fmt.Errorf("%w: row has %d columns, want %d", ErrShape, len(row), len(n.center))
	}
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - n.center[j]) / n.scale[j]
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// quantile returns the q-th (0..1) empirical quantile of xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// KMeans is a clustering-based outlier detector.
type KMeans struct {
	norm      *normalizer
	centroids [][]float64
	threshold float64
}

var _ Detector = (*KMeans)(nil)

// KMeansOptions tunes training.
type KMeansOptions struct {
	// K is the number of clusters (default 4).
	K int
	// Iterations bounds Lloyd's algorithm (default 50).
	Iterations int
	// Quantile calibrates the alarm threshold from the training score
	// distribution (default 0.995).
	Quantile float64
	// Seed drives centroid initialization.
	Seed int64
}

func (o KMeansOptions) withDefaults() KMeansOptions {
	if o.K == 0 {
		o.K = 4
	}
	if o.Iterations == 0 {
		o.Iterations = 50
	}
	if o.Quantile == 0 {
		o.Quantile = 0.995
	}
	return o
}

// TrainKMeans fits the detector on unlabeled rows (presumed mostly
// normal operating states).
func TrainKMeans(rows [][]float64, opts KMeansOptions) (*KMeans, error) {
	opts = opts.withDefaults()
	if len(rows) == 0 {
		return nil, ErrNoData
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("unsupervised: k %d must be >= 1", opts.K)
	}
	if len(rows) < opts.K {
		opts.K = len(rows)
	}
	norm, err := fitNormalizer(rows)
	if err != nil {
		return nil, err
	}
	data := make([][]float64, len(rows))
	for i, row := range rows {
		v, err := norm.apply(row)
		if err != nil {
			return nil, err
		}
		data[i] = v
	}

	// k-means++ style seeding: first centroid random, then farthest-
	// point weighting (deterministic via the seed).
	rng := rand.New(rand.NewSource(opts.Seed))
	centroids := make([][]float64, 0, opts.K)
	centroids = append(centroids, append([]float64(nil), data[rng.Intn(len(data))]...))
	for len(centroids) < opts.K {
		dists := make([]float64, len(data))
		total := 0.0
		for i, p := range data {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			centroids = append(centroids, append([]float64(nil), data[rng.Intn(len(data))]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := len(data) - 1
		for i, d := range dists {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), data[pick]...))
	}

	// Lloyd's iterations.
	assign := make([]int, len(data))
	for iter := 0; iter < opts.Iterations; iter++ {
		changed := false
		for i, p := range data {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, len(centroids))
		sums := make([][]float64, len(centroids))
		for c := range sums {
			sums[c] = make([]float64, len(data[0]))
		}
		for i, p := range data {
			counts[assign[i]]++
			for j, v := range p {
				sums[assign[i]][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep the stale centroid rather than divide by zero
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}

	km := &KMeans{norm: norm, centroids: centroids}
	scores := make([]float64, len(rows))
	for i, row := range rows {
		s, err := km.Score(row)
		if err != nil {
			return nil, err
		}
		scores[i] = s
	}
	km.threshold = quantile(scores, opts.Quantile) * 1.25
	if km.threshold <= 0 {
		km.threshold = 1
	}
	return km, nil
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Score implements Detector: the Euclidean distance (in robust-normalized
// space) to the nearest cluster centroid.
func (k *KMeans) Score(row []float64) (float64, error) {
	p, err := k.norm.apply(row)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for _, c := range k.centroids {
		if d := sqDist(p, c); d < best {
			best = d
		}
	}
	return math.Sqrt(best), nil
}

// Anomalous implements Detector.
func (k *KMeans) Anomalous(row []float64) (bool, error) {
	s, err := k.Score(row)
	if err != nil {
		return false, err
	}
	return s > k.threshold, nil
}

// Threshold implements Detector.
func (k *KMeans) Threshold() float64 { return k.threshold }

// Centroids returns the number of clusters (for diagnostics).
func (k *KMeans) Centroids() int { return len(k.centroids) }

// ZScore is a per-attribute robust outlier detector: the anomaly score
// is the sum of per-attribute |z| values beyond a slack of 2, so a
// single wildly deviating attribute or several mildly deviating ones
// both raise it.
type ZScore struct {
	norm      *normalizer
	threshold float64
}

var _ Detector = (*ZScore)(nil)

// ZScoreOptions tunes training.
type ZScoreOptions struct {
	// Quantile calibrates the alarm threshold (default 0.995).
	Quantile float64
}

// TrainZScore fits the detector on unlabeled rows.
func TrainZScore(rows [][]float64, opts ZScoreOptions) (*ZScore, error) {
	if len(rows) == 0 {
		return nil, ErrNoData
	}
	if opts.Quantile == 0 {
		opts.Quantile = 0.995
	}
	norm, err := fitNormalizer(rows)
	if err != nil {
		return nil, err
	}
	z := &ZScore{norm: norm}
	scores := make([]float64, len(rows))
	for i, row := range rows {
		s, err := z.Score(row)
		if err != nil {
			return nil, err
		}
		scores[i] = s
	}
	z.threshold = quantile(scores, opts.Quantile)*1.25 + 1
	return z, nil
}

// Score implements Detector.
func (z *ZScore) Score(row []float64) (float64, error) {
	p, err := z.norm.apply(row)
	if err != nil {
		return 0, err
	}
	const slack = 2.0
	s := 0.0
	for _, v := range p {
		if a := math.Abs(v); a > slack {
			s += a - slack
		}
	}
	return s, nil
}

// Anomalous implements Detector.
func (z *ZScore) Anomalous(row []float64) (bool, error) {
	s, err := z.Score(row)
	if err != nil {
		return false, err
	}
	return s > z.threshold, nil
}

// Threshold implements Detector.
func (z *ZScore) Threshold() float64 { return z.threshold }

// Contributions implements Detector: each attribute's squared distance
// (in normalized space) to the nearest centroid's coordinate.
func (k *KMeans) Contributions(row []float64) ([]float64, error) {
	p, err := k.norm.apply(row)
	if err != nil {
		return nil, err
	}
	var nearest []float64
	best := math.Inf(1)
	for _, c := range k.centroids {
		if d := sqDist(p, c); d < best {
			best = d
			nearest = c
		}
	}
	out := make([]float64, len(p))
	if nearest == nil {
		return out, nil
	}
	for j := range p {
		d := p[j] - nearest[j]
		out[j] = d * d
	}
	return out, nil
}

// Contributions implements Detector: each attribute's robust |z| beyond
// the slack.
func (z *ZScore) Contributions(row []float64) ([]float64, error) {
	p, err := z.norm.apply(row)
	if err != nil {
		return nil, err
	}
	const slack = 2.0
	out := make([]float64, len(p))
	for j, v := range p {
		if a := math.Abs(v); a > slack {
			out[j] = a - slack
		}
	}
	return out, nil
}
