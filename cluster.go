package prepare

import (
	"prepare/internal/cloudsim"
	"prepare/internal/control"
)

// Cloud substrate types, exposed so custom applications can be built on
// the simulated cluster and managed by the PREPARE control loop.
type (
	// Cluster owns simulated hosts and VMs and exposes the actuation API
	// (elastic scaling, live migration).
	Cluster = cloudsim.Cluster
	// Host is a simulated physical machine.
	Host = cloudsim.Host
	// VM is a simulated virtual machine; applications write its demand
	// and usage fields each tick, fault injectors perturb it, and the
	// monitor reads it out of band.
	VM = cloudsim.VM
	// HostID identifies a host.
	HostID = cloudsim.HostID
	// ClusterAction records one actuation in the cluster's log.
	ClusterAction = cloudsim.Action
)

// NewCluster returns an empty simulated cluster.
func NewCluster() *Cluster { return cloudsim.NewCluster() }

// MigrationSeconds returns the simulated live-migration duration for a
// VM with the given memory allocation (Table I: ~8.5 s at 512 MB).
func MigrationSeconds(memMB float64) int64 { return cloudsim.MigrationSeconds(memMB) }

// ManagedApp is the application contract the control loop manages. Both
// built-in simulated applications implement it; implement it yourself to
// manage a custom application with PREPARE.
type ManagedApp = control.App

// Controller runs one management scheme (PREPARE, reactive, or none)
// against an application on a cluster. Drive it by calling OnTick once
// per simulated second, after the application has ticked.
type Controller = control.Controller

// ControlConfig tunes the control loop (sampling interval, look-ahead
// window, alarm filtering, training time, actuation policy, unsupervised
// mode, ...).
type ControlConfig = control.Config

// NewController builds a control loop for the scheme over the
// application. The cluster is wrapped in its substrate adapter
// internally; to run the loop over a different substrate (for example a
// replayed trace), use NewSubstrateController.
//
// Typical custom-app wiring:
//
//	cluster := prepare.NewCluster()
//	cluster.AddDefaultHost("h1")
//	cluster.PlaceVM("vm1", "h1", 100, 512)
//	app := myApp{cluster: cluster}             // implements ManagedApp
//	ctl, _ := prepare.NewController(prepare.SchemePREPARE, cluster, app,
//	    prepare.ControlConfig{TrainAtS: 600})
//	for t := int64(1); t <= horizon; t++ {
//	    now := prepare.SimTime(t)
//	    app.Tick(now)
//	    cluster.Tick(now)
//	    if err := ctl.OnTick(now); err != nil { ... }
//	}
func NewController(scheme Scheme, cluster *Cluster, app ManagedApp, cfg ControlConfig) (*Controller, error) {
	sub, err := cloudsim.NewSubstrate(cluster, app.VMIDs())
	if err != nil {
		return nil, err
	}
	return control.New(scheme, sub, app, cfg)
}

// NewSubstrateController builds a control loop directly over any
// substrate implementation (the three arrows of the loop: metric
// source, inventory, actuator).
func NewSubstrateController(scheme Scheme, sub Substrate, app ManagedApp, cfg ControlConfig) (*Controller, error) {
	return control.New(scheme, sub, app, cfg)
}
