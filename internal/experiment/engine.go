package experiment

import (
	"fmt"

	"prepare/internal/chaos"
	"prepare/internal/control"
	"prepare/internal/prevent"
	"prepare/internal/simclock"
	"prepare/internal/telemetry"
)

// TenantScenario names one tenant of a multi-tenant engine run and the
// scenario its world is built from.
type TenantScenario struct {
	// ID labels the tenant in aggregate output; unique and non-empty.
	ID string
	// Scenario describes the tenant's application, fault, scheme, and
	// timeline. Each tenant gets its own simulator and seeded RNGs.
	Scenario Scenario
}

// EngineOptions configures RunEngine's sharding.
type EngineOptions struct {
	// Shards is the number of concurrently stepped tenant groups;
	// <= 0 uses the worker-pool default. Per-tenant results are
	// bit-identical for any value.
	Shards int
	// Workers bounds the worker pool; <= 0 uses DefaultWorkers().
	Workers int
}

// TenantResult is one tenant's outcome of an engine run.
type TenantResult struct {
	Tenant   string
	Scenario Scenario
	// EvalViolationSeconds / TotalViolationSeconds mirror Result.
	EvalViolationSeconds  int64
	TotalViolationSeconds int64
	Alerts                []control.AlertEvent
	Steps                 []prevent.Step
	// Telemetry is the tenant's metric/event snapshot, nil unless the
	// process-wide registry was enabled when the run started.
	Telemetry *telemetry.Snapshot
	// ChaosEvents is the tenant's fault-injection log (nil when the
	// tenant's chaos plan is disabled).
	ChaosEvents []chaos.Event
}

// EngineResult aggregates a multi-tenant engine run.
type EngineResult struct {
	// Tenants holds per-tenant outcomes in canonical sorted ID order.
	Tenants []TenantResult
	// Alerts / Steps are the engine's merged streams, sorted by
	// (Time, Tenant) — identical for any shard or worker count.
	Alerts []control.TenantAlert
	Steps  []control.TenantStep
	// Stats is the engine's aggregate telemetry.
	Stats control.EngineStats
}

// RunEngine builds one fully isolated simulated world per tenant and
// steps all tenants concurrently on the sharded control engine. Tenants
// run for their own scenario durations; the engine's horizon is the
// longest one. Per-tenant results are bit-identical to running each
// scenario alone with Run, for any shard or worker count.
func RunEngine(tenants []TenantScenario, opts EngineOptions) (EngineResult, error) {
	if len(tenants) == 0 {
		return EngineResult{}, fmt.Errorf("experiment: engine needs at least one tenant")
	}
	var (
		horizon int64
		ts      = make([]control.Tenant, len(tenants))
		scs     = make([]Scenario, len(tenants))
		regs    = make([]*telemetry.Registry, len(tenants))
		chaoses = make([]*chaos.Substrate, len(tenants))
		byID    = make(map[string]int, len(tenants))
	)
	for i, t := range tenants {
		if _, dup := byID[t.ID]; dup {
			return EngineResult{}, fmt.Errorf("experiment: duplicate tenant ID %q", t.ID)
		}
		byID[t.ID] = i
		sc := t.Scenario.withDefaults()
		scs[i] = sc
		w, err := buildWorld(sc)
		if err != nil {
			return EngineResult{}, fmt.Errorf("experiment: tenant %s: %w", t.ID, err)
		}
		regs[i] = newRunRegistry()
		sub, cs, err := wireChaos(sc, w, regs[i])
		if err != nil {
			return EngineResult{}, fmt.Errorf("experiment: tenant %s: %w", t.ID, err)
		}
		chaoses[i] = cs
		ctl, err := control.New(sc.Scheme, sub, w.app, control.Config{
			SamplingIntervalS: sc.SamplingIntervalS,
			LookaheadS:        sc.LookaheadS,
			FilterK:           sc.FilterK,
			FilterW:           sc.FilterW,
			TrainAtS:          sc.TrainAtS,
			RetrainIntervalS:  sc.RetrainIntervalS,
			RetrainMode:       sc.RetrainMode,
			Policy:            sc.Policy,
			Predict:           sc.Predict,
			MonitorSeed:       sc.Seed + 1000,
			DisableValidation: sc.DisableValidation,
			Detector:          sc.Detector,
			Unsupervised:      sc.Unsupervised,
			Telemetry:         regs[i],
			MonitorResilience: sc.monitorResilience(),

			HistoryWindowSamples:     sc.HistoryWindowSamples,
			Placement:                sc.Placement,
			PlacementPreemptionDepth: sc.PlacementPreemptionDepth,
		})
		if err != nil {
			return EngineResult{}, fmt.Errorf("experiment: tenant %s: %w", t.ID, err)
		}
		world := w
		ts[i] = control.Tenant{
			ID:         t.ID,
			Controller: ctl,
			Advance: func(now simclock.Time) error {
				world.tick(now)
				return nil
			},
			Until: simclock.Time(sc.DurationS),
		}
		if sc.DurationS > horizon {
			horizon = sc.DurationS
		}
	}

	eng, err := control.NewEngine(ts, control.EngineOptions{Shards: opts.Shards, Workers: opts.Workers})
	if err != nil {
		return EngineResult{}, fmt.Errorf("experiment: %w", err)
	}
	if err := eng.Run(simclock.Time(horizon)); err != nil {
		return EngineResult{}, fmt.Errorf("experiment: %w", err)
	}

	res := EngineResult{
		Alerts: eng.Alerts(),
		Steps:  eng.Steps(),
		Stats:  eng.Stats(),
	}
	// Per-tenant outcomes in the engine's canonical order; the parallel
	// scs/regs slices are indexed by input order, so map IDs back.
	for _, id := range eng.Tenants() {
		i := byID[id]
		ctl := eng.Controller(id)
		sc := scs[i]
		log := ctl.SLOLog()
		tr := TenantResult{
			Tenant:                id,
			Scenario:              sc,
			EvalViolationSeconds:  log.ViolationSeconds(simclock.Time(sc.TrainAtS), simclock.Time(sc.DurationS+1)),
			TotalViolationSeconds: log.ViolationSeconds(0, simclock.Time(sc.DurationS+1)),
			Alerts:                ctl.Alerts(),
			Steps:                 ctl.Steps(),
		}
		if chaoses[i] != nil {
			tr.ChaosEvents = chaoses[i].Events()
		}
		if regs[i] != nil {
			snap := regs[i].Snapshot()
			tr.Telemetry = snap
			telemetry.Default().Merge(snap)
		}
		res.Tenants = append(res.Tenants, tr)
	}
	return res, nil
}

// MultiTenant derives n tenant scenarios from a base scenario: each
// tenant gets a stable ID and its own seed, so the tenants' worlds are
// independent but the whole fleet is reproducible.
func MultiTenant(n int, base Scenario) []TenantScenario {
	out := make([]TenantScenario, n)
	for i := range out {
		sc := base
		sc.Seed = base.Seed + int64(i)
		out[i] = TenantScenario{ID: fmt.Sprintf("tenant%02d", i+1), Scenario: sc}
	}
	return out
}
