// Stream processing scenario: the paper's IBM System S-like dataflow
// (7 processing elements across 7 VMs) under a recurrent memory leak,
// compared across all three management schemes, with the throughput
// trace around the second injection — a reproduction of Figures 6/7(a).
//
//	go run ./examples/streamprocessing
package main

import (
	"fmt"
	"log"

	"prepare"
)

func main() {
	fmt.Println("System S stream processing under a recurrent memory leak (PE3)")
	fmt.Println()

	type row struct {
		scheme prepare.Scheme
		result prepare.Result
	}
	var rows []row
	for _, scheme := range []prepare.Scheme{
		prepare.SchemeNone, prepare.SchemeReactive, prepare.SchemePREPARE,
	} {
		res, err := prepare.Run(prepare.Scenario{
			App:    prepare.SystemS,
			Fault:  prepare.MemoryLeak,
			Scheme: scheme,
			Seed:   100,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{scheme, res})
	}

	fmt.Printf("%-24s %20s %8s %8s\n", "scheme", "SLO violation (s)", "alerts", "actions")
	for _, r := range rows {
		fmt.Printf("%-24s %20d %8d %8d\n",
			r.scheme, r.result.EvalViolationSeconds, len(r.result.Alerts), len(r.result.Steps))
	}

	// Close-up of the second injection window: end-to-end throughput in
	// Ktuples/s, every 20 seconds (the paper's Figure 7(a) view).
	fmt.Println("\nthroughput trace around the second injection (Ktuples/s):")
	fmt.Printf("%-8s", "t(s)")
	for _, r := range rows {
		fmt.Printf(" %22s", r.scheme)
	}
	fmt.Println()
	inj := rows[0].result.Scenario.Inject2
	for t := inj[0] - 40; t < inj[1]+80; t += 20 {
		fmt.Printf("%-8d", t)
		for _, r := range rows {
			p := r.result.Trace[t-1] // trace index i holds time i+1
			mark := " "
			if p.Violated {
				mark = "*"
			}
			fmt.Printf(" %21.1f%s", p.Metric, mark)
		}
		fmt.Println()
	}
	fmt.Println("(* marks SLO violation: output/input < 0.95 or per-tuple time > 20 ms)")

	// What did PREPARE pinpoint?
	fmt.Println("\nPREPARE prevention steps:")
	for _, s := range rows[2].result.Steps {
		fmt.Printf("  t=%-6v %-8s %-10v %s\n", s.Time, s.VM, s.Kind, s.Detail)
	}
}
