package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"prepare/internal/bayes"
	"prepare/internal/cloudsim"
	"prepare/internal/markov"
	"prepare/internal/metrics"
	"prepare/internal/monitor"
	"prepare/internal/predict"
	"prepare/internal/simclock"
)

// Table1Row is one row of the paper's overhead table.
type Table1Row struct {
	Module string
	// Paper is the cost the paper reports on its 2012 testbed.
	Paper string
	// Measured is this implementation's cost (wall clock for model
	// operations; the simulation constant for actuations).
	Measured string
}

// Table1 measures the CPU cost of each PREPARE module, mirroring the
// paper's Table I. Model operations are timed over `rounds` repetitions
// of the same 600-sample/13-attribute workload the paper used; actuation
// rows report the simulated latency constants. The five module timings
// run concurrently on the package worker pool; each measurement times
// its own repetition loop, so per-op figures stay comparable (on a
// heavily loaded machine, SetDefaultWorkers(1) restores fully serial
// timing).
func Table1(rounds int) ([]Table1Row, error) {
	if rounds < 1 {
		rounds = 50
	}

	rows, labels, err := table1TrainingData()
	if err != nil {
		return nil, err
	}

	timings := []func() (string, error){
		func() (string, error) { return timeMonitoring(rounds) },
		func() (string, error) { return timeMarkovTraining(rows, predict.SimpleMarkov, rounds) },
		func() (string, error) { return timeMarkovTraining(rows, predict.TwoDependent, rounds) },
		func() (string, error) { return timeTANTraining(rows, labels, rounds) },
		func() (string, error) { return timePrediction(rows, labels, rounds) },
	}
	measured := make([]string, len(timings))
	err = Runner{}.ForEach(context.Background(), len(timings), func(_ context.Context, i int) error {
		m, err := timings[i]()
		if err != nil {
			return fmt.Errorf("experiment: table1 timing %d: %w", i, err)
		}
		measured[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	return []Table1Row{
		{"VM monitoring (13 attributes)", "4.68 ms", measured[0]},
		{"Simple Markov model training (600 samples)", "61.0 ms", measured[1]},
		{"2-dep. Markov model training (600 samples)", "135.1 ms", measured[2]},
		{"TAN model training (600 samples)", "4.0 ms", measured[3]},
		{"Anomaly prediction", "1.3 ms", measured[4]},
		{"CPU resource scaling", "107.0 ms", fmt.Sprintf("%.0f ms (simulated)", cloudsim.CPUScalingLatencyMS)},
		{"Memory resource scaling", "116.0 ms", fmt.Sprintf("%.0f ms (simulated)", cloudsim.MemScalingLatencyMS)},
		{"Live VM migration (512MB memory)", "8.56 s", fmt.Sprintf("%d s (simulated)", cloudsim.MigrationSeconds(512))},
	}, nil
}

// FormatTable1 renders Table I as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table I: PREPARE system overhead measurements")
	fmt.Fprintf(&b, "%-46s %14s %22s\n", "module", "paper", "measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-46s %14s %22s\n", r.Module, r.Paper, r.Measured)
	}
	return b.String()
}

func table1TrainingData() ([][]float64, []metrics.Label, error) {
	// Deterministic 600-sample fixture with an anomaly episode.
	rows := make([][]float64, 600)
	labels := make([]metrics.Label, 600)
	for i := range rows {
		row := make([]float64, metrics.NumAttributes)
		for j := range row {
			row[j] = float64(100 + j*10 + (i*7+j*3)%17)
		}
		if i >= 200 && i < 400 {
			row[metrics.FreeMem.Index()] = float64(10 + i%13)
			row[metrics.CPUTotal.Index()] = float64(92 + i%7)
			labels[i] = metrics.LabelAbnormal
		} else {
			labels[i] = metrics.LabelNormal
		}
		rows[i] = row
	}
	return rows, labels, nil
}

func timeMonitoring(rounds int) (string, error) {
	cluster := cloudsim.NewCluster()
	if _, err := cluster.AddDefaultHost("h1"); err != nil {
		return "", err
	}
	vm, err := cluster.PlaceVM("vm1", "h1", 100, 512)
	if err != nil {
		return "", err
	}
	vm.CPUUsage = 50
	vm.WorkingSetMB = 300
	sub, err := cloudsim.NewSubstrate(cluster, []cloudsim.VMID{"vm1"})
	if err != nil {
		return "", err
	}
	sampler, err := monitor.NewSampler(sub, []cloudsim.VMID{"vm1"}, monitor.Config{Seed: 1})
	if err != nil {
		return "", err
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		sampler.Advance(simclock.Time(i))
		if _, err := sampler.Collect(simclock.Time(i), metrics.LabelNormal); err != nil {
			return "", err
		}
	}
	return perOp(time.Since(start), rounds), nil
}

func timeMarkovTraining(rows [][]float64, order predict.MarkovOrder, rounds int) (string, error) {
	// Pre-discretize, as in the bench: training cost = chain fitting.
	seqs := make([][]int, metrics.NumAttributes)
	for j := 0; j < metrics.NumAttributes; j++ {
		col := make([]float64, len(rows))
		for i := range rows {
			col[i] = rows[i][j]
		}
		d, err := metrics.NewEqualWidth(col, 8)
		if err != nil {
			return "", err
		}
		seq := make([]int, len(rows))
		for i := range col {
			seq[i] = d.Bin(col[i])
		}
		seqs[j] = seq
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for j := range seqs {
			if order == predict.SimpleMarkov {
				ch, err := markov.NewSimpleChain(8)
				if err != nil {
					return "", err
				}
				if err := ch.Fit(seqs[j]); err != nil {
					return "", err
				}
			} else {
				ch, err := markov.NewTwoDepChain(8)
				if err != nil {
					return "", err
				}
				if err := ch.Fit(seqs[j]); err != nil {
					return "", err
				}
			}
		}
	}
	return perOp(time.Since(start), rounds), nil
}

func timeTANTraining(rows [][]float64, labels []metrics.Label, rounds int) (string, error) {
	binsPer := make([]int, metrics.NumAttributes)
	for j := range binsPer {
		binsPer[j] = 8
	}
	instances := make([]bayes.Instance, len(rows))
	for i, row := range rows {
		binned := make([]int, len(row))
		for j, v := range row {
			binned[j] = int(v) % 8
			if binned[j] < 0 {
				binned[j] += 8
			}
		}
		instances[i] = bayes.Instance{Bins: binned, Abnormal: labels[i] == metrics.LabelAbnormal}
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := bayes.Train(instances, binsPer, bayes.Options{}); err != nil {
			return "", err
		}
	}
	return perOp(time.Since(start), rounds), nil
}

func timePrediction(rows [][]float64, labels []metrics.Label, rounds int) (string, error) {
	p, err := predict.New(predict.Config{}, predict.AttributeNames())
	if err != nil {
		return "", err
	}
	if err := p.Train(rows, labels); err != nil {
		return "", err
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := p.PredictWindow(120); err != nil {
			return "", err
		}
	}
	return perOp(time.Since(start), rounds), nil
}

func perOp(total time.Duration, rounds int) string {
	per := total / time.Duration(rounds)
	switch {
	case per >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(per)/float64(time.Millisecond))
	case per >= time.Microsecond:
		return fmt.Sprintf("%.1f µs", float64(per)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%d ns", per.Nanoseconds())
	}
}
