package substrate

import (
	"errors"
	"testing"
)

func TestActionKindStrings(t *testing.T) {
	tests := []struct {
		kind ActionKind
		want string
	}{
		{ActionScaleCPU, "scale_cpu"},
		{ActionScaleMem, "scale_mem"},
		{ActionMigrate, "migrate"},
		{ActionKind(99), "action(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestSentinelErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNoSuchVM, ErrNoSuchHost, ErrInsufficient, ErrMigrating, ErrNoEligibleTarget}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Errorf("error %d and %d must be distinct sentinels", i, j)
			}
		}
	}
}
