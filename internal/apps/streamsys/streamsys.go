// Package streamsys simulates an IBM System S-like data stream processing
// application: a DAG of processing elements (PEs), each hosted in its own
// VM, with tuple queues, CPU-bound processing, and backpressure.
//
// The simulated application reproduces the paper's tax-calculation
// topology (Figure 4): seven PEs across seven VMs, where PE1 is the
// source, tuples fan out over two branches (PE2→PE4 and PE3→PE5) that
// merge at PE6 — a sink PE that intensively sends processed tuples to the
// network and is the first to be overloaded under the bottleneck fault —
// before the final PE7 stage emits results.
//
// The SLO follows the paper exactly: a violation is marked when
// InputRate/OutputRate < 0.95 (equivalently output/input below 0.95 for
// a lossy system) or the average per-tuple processing time exceeds 20 ms.
package streamsys

import (
	"fmt"
	"math"
	"sort"

	"prepare/internal/cloudsim"
	"prepare/internal/simclock"
	"prepare/internal/workload"
)

// SLO thresholds from the paper.
const (
	// SLORateRatio is the minimum acceptable output/input rate ratio.
	SLORateRatio = 0.95
	// SLOTupleTimeMs is the maximum acceptable average per-tuple
	// processing time in milliseconds.
	SLOTupleTimeMs = 20.0
)

// Default per-VM resource shape for PEs.
const (
	defaultPECPU    = 100.0 // percentage points
	defaultPEMemMB  = 512.0
	defaultPEBaseWS = 260.0 // resident working set in MB
	queueCapKTuples = 60.0  // input queue cap before tuples drop
	tupleKB         = 0.4   // average tuple size on the wire
)

// PE is one processing element of the dataflow graph.
type PE struct {
	Name string
	VM   cloudsim.VMID
	// CostPerKTuple is CPU percentage points consumed per (Ktuple/s) of
	// processing throughput.
	CostPerKTuple float64
	// BaseServiceMs is the uncongested per-tuple processing time.
	BaseServiceMs float64
	// OutFanKB scales network output volume (the sink PE sends
	// intensively).
	OutFanKB float64

	downstream []*PE
	queue      float64 // queued Ktuples
	inRate     float64 // arrivals this tick (Ktuples/s)
	procRate   float64 // processed this tick
	tupleMs    float64 // per-tuple latency contribution this tick
}

// Queue returns the PE's current queue length in Ktuples.
func (p *PE) Queue() float64 { return p.queue }

// ProcessedRate returns the PE's processing rate last tick (Ktuples/s).
func (p *PE) ProcessedRate() float64 { return p.procRate }

// App is the simulated System S application bound to a cloudsim cluster.
type App struct {
	cluster *cloudsim.Cluster
	input   workload.Generator
	pes     map[string]*PE
	order   []string // topological order
	source  *PE
	sink    *PE

	inputRate  float64 // offered load this tick (Ktuples/s)
	outputRate float64 // sink emission this tick
	avgTupleMs float64 // average end-to-end per-tuple time this tick
}

// Topology returns the names of the PEs in topological order.
func (a *App) Topology() []string {
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// Config parameterizes the application.
type Config struct {
	// Input is the offered tuple rate in Ktuples/s. Defaults to a steady
	// 25 Ktuples/s if nil.
	Input workload.Generator
	// HostIDs are the hosts to place the seven PE VMs on, round-robin.
	// They must already exist in the cluster.
	HostIDs []cloudsim.HostID
}

// New builds the seven-PE application on the cluster, placing one VM per
// PE round-robin over the given hosts (as in the paper, each PE runs in a
// guest VM).
func New(cluster *cloudsim.Cluster, cfg Config) (*App, error) {
	if cluster == nil {
		return nil, fmt.Errorf("streamsys: cluster is required")
	}
	if len(cfg.HostIDs) == 0 {
		return nil, fmt.Errorf("streamsys: at least one host is required")
	}
	input := cfg.Input
	if input == nil {
		input = workload.Constant{Value: 25}
	}

	mk := func(name string, cost, baseMs, fanKB float64) *PE {
		return &PE{
			Name:          name,
			VM:            cloudsim.VMID("vm-" + name),
			CostPerKTuple: cost,
			BaseServiceMs: baseMs,
			OutFanKB:      fanKB,
		}
	}
	// PE6 is the heavy network sink: highest per-tuple cost, so it is the
	// first PE to saturate when the workload ramps (the bottleneck PE in
	// the paper's experiments).
	pes := []*PE{
		mk("pe1", 2.4, 1.0, tupleKB),
		mk("pe2", 2.6, 1.1, tupleKB),
		mk("pe3", 2.6, 1.1, tupleKB),
		mk("pe4", 2.8, 1.2, tupleKB),
		mk("pe5", 2.8, 1.2, tupleKB),
		mk("pe6", 3.0, 1.6, 4*tupleKB),
		mk("pe7", 2.2, 0.9, tupleKB),
	}
	byName := make(map[string]*PE, len(pes))
	for _, p := range pes {
		byName[p.Name] = p
	}
	link := func(from, to string) { byName[from].downstream = append(byName[from].downstream, byName[to]) }
	link("pe1", "pe2")
	link("pe1", "pe3")
	link("pe2", "pe4")
	link("pe3", "pe5")
	link("pe4", "pe6")
	link("pe5", "pe6")
	link("pe6", "pe7")

	app := &App{
		cluster: cluster,
		input:   input,
		pes:     byName,
		order:   []string{"pe1", "pe2", "pe3", "pe4", "pe5", "pe6", "pe7"},
		source:  byName["pe1"],
		sink:    byName["pe7"],
	}
	for i, p := range pes {
		hostID := cfg.HostIDs[i%len(cfg.HostIDs)]
		if _, err := cluster.PlaceVM(p.VM, hostID, defaultPECPU, defaultPEMemMB); err != nil {
			return nil, fmt.Errorf("streamsys: place %s: %w", p.Name, err)
		}
	}
	return app, nil
}

// VMIDs returns the IDs of the application's VMs in PE order.
func (a *App) VMIDs() []cloudsim.VMID {
	out := make([]cloudsim.VMID, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, a.pes[name].VM)
	}
	return out
}

// PEByVM maps a VM back to its PE name. The boolean follows comma-ok.
func (a *App) PEByVM(id cloudsim.VMID) (string, bool) {
	for name, p := range a.pes {
		if p.VM == id {
			return name, true
		}
	}
	return "", false
}

// Tick advances the dataflow by one simulated second: tuples arrive at
// the source, each PE processes up to its CPU-limited capacity, queues
// absorb overload (dropping beyond capacity), and per-VM resource usage
// is published to the cluster for monitoring.
func (a *App) Tick(now simclock.Time) {
	a.inputRate = a.input.Rate(now)

	// Reset per-tick arrival accounting.
	for _, name := range a.order {
		a.pes[name].inRate = 0
	}
	a.source.inRate = a.inputRate

	for _, name := range a.order {
		p := a.pes[name]
		vm, err := a.cluster.VM(p.VM)
		if err != nil {
			continue // VM lookup cannot fail for our own placements
		}
		a.tickPE(p, vm)
	}
	a.outputRate = a.sink.procRate
	a.avgTupleMs = a.pathLatencyMs()
}

func (a *App) tickPE(p *PE, vm *cloudsim.VM) {
	pressure := vm.MemPressure()
	usable := vm.UsableCPU()

	// CPU-limited processing capacity in Ktuples/s, slowed by paging.
	capacity := usable / (p.CostPerKTuple * pressure)
	pending := p.queue + p.inRate
	processed := math.Min(pending, capacity)
	if processed < 0 {
		processed = 0
	}
	p.queue = pending - processed
	dropped := 0.0
	if p.queue > queueCapKTuples {
		dropped = p.queue - queueCapKTuples
		p.queue = queueCapKTuples
	}
	_ = dropped
	p.procRate = processed

	// Per-tuple latency: base service inflated by paging and queueing
	// delay (queue drain time amortized per tuple).
	util := 0.0
	if capacity > 0 {
		util = math.Min(p.inRate/capacity, 0.999)
	} else {
		util = 0.999
	}
	congestion := 1 / (1 - util)
	queueWaitMs := 0.0
	if capacity > 0 {
		queueWaitMs = p.queue / capacity * 1000
	} else if p.queue > 0 {
		queueWaitMs = 1000
	}
	p.tupleMs = math.Min(p.BaseServiceMs*pressure*congestion+queueWaitMs, 2000)

	// Fan processed tuples downstream: PE1 splits evenly, PE6 merges.
	if n := len(p.downstream); n > 0 {
		share := processed / float64(n)
		for _, d := range p.downstream {
			d.inRate += share
		}
	}

	// Publish resource usage for the monitor.
	demand := (p.queue + p.inRate) * p.CostPerKTuple * pressure
	used := processed * p.CostPerKTuple * pressure
	hog := math.Min(vm.ExternalCPU, vm.CPUAllocation)
	vm.CPUDemand = demand + hog
	vm.CPUUsage = math.Min(used+hog, vm.CPUAllocation)
	vm.WorkingSetMB = defaultPEBaseWS + p.queue*0.5
	vm.NetInKBps = p.inRate * 1000 * tupleKB
	vm.NetOutKBps = processed * 1000 * p.OutFanKB
	vm.DiskReadKBps = 40 + processed*2
	vm.DiskWriteKBs = 20 + processed
}

// pathLatencyMs returns the slower of the two branch latencies
// (source → branch → merge → sink), i.e., the end-to-end average
// per-tuple processing time.
func (a *App) pathLatencyMs() float64 {
	paths := [][]string{
		{"pe1", "pe2", "pe4", "pe6", "pe7"},
		{"pe1", "pe3", "pe5", "pe6", "pe7"},
	}
	worst := 0.0
	for _, path := range paths {
		total := 0.0
		for _, name := range path {
			total += a.pes[name].tupleMs
		}
		if total > worst {
			worst = total
		}
	}
	return worst
}

// InputRate returns the offered load last tick (Ktuples/s).
func (a *App) InputRate() float64 { return a.inputRate }

// OutputRate returns the sink emission rate last tick (Ktuples/s).
func (a *App) OutputRate() float64 { return a.outputRate }

// AvgTupleTimeMs returns the average per-tuple processing time last tick.
func (a *App) AvgTupleTimeMs() float64 { return a.avgTupleMs }

// SLOViolated reports whether the application violated its SLO last tick,
// per the paper: output/input ratio below 0.95 or per-tuple time above
// 20 ms.
func (a *App) SLOViolated() bool {
	if a.inputRate <= 0 {
		return false
	}
	ratio := a.outputRate / a.inputRate
	return ratio < SLORateRatio || a.avgTupleMs > SLOTupleTimeMs
}

// SLOMetric returns the headline trace metric, the end-to-end throughput
// in Ktuples/s (Figures 7a/7c/9a/9c plot this).
func (a *App) SLOMetric() float64 { return a.outputRate }

// PEs returns the PE names sorted alphabetically (for deterministic
// iteration in diagnostics).
func (a *App) PEs() []string {
	out := make([]string, 0, len(a.pes))
	for name := range a.pes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BottleneckPE returns the name of the PE designed to saturate first
// under a workload ramp (PE6, the network-intensive sink stage).
func (a *App) BottleneckPE() string { return "pe6" }
