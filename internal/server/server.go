// Package server wraps the sharded multi-tenant control.Engine behind
// an asynchronous ingest→predict→actuate controller service. Metric
// samples are POSTed in batches, land on bounded per-shard queues
// (backpressure: a full queue rejects the batch with 429 + Retry-After
// — the server never buffers unboundedly), and per-shard workers append
// them to push-style replay substrates, advancing each shard's control
// loops watermark-gated: a tenant ticks through simulated second T only
// once every one of the shard's VMs has reported a sample at or beyond
// T, so the asynchronous pipeline reproduces the synchronous engine's
// alert stream byte-for-byte. Confirmed alerts and executed preventions
// flow through a publish stage into bounded sequence-numbered logs
// consumed with since-cursors, and periodic model-snapshot checkpoints
// (reusing control's SaveModels/RestoreModels) give a cold replica warm
// failover: restored, it resumes with identical subsequent alerts.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"prepare/internal/chaos"
	"prepare/internal/control"
	"prepare/internal/replay"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
	"prepare/internal/telemetry"
)

// Sentinel errors surfaced by Ingest and mapped onto HTTP statuses by
// the API layer.
var (
	// ErrNotRunning: the server has not started or has been closed.
	ErrNotRunning = errors.New("server: not running")
	// ErrBackpressure: at least one shard queue was full; retry after
	// the advertised delay. Accepted batches from the same request are
	// still processed.
	ErrBackpressure = errors.New("server: shard queue full")
	// ErrUnknownTenant: the batch names a tenant the server does not
	// manage.
	ErrUnknownTenant = errors.New("server: unknown tenant")
	// ErrBadBatch: the batch is structurally invalid (unknown VM, wrong
	// vector width, negative time, no samples).
	ErrBadBatch = errors.New("server: invalid batch")
	// ErrBatchTooLarge: the request exceeds MaxBatchSamples.
	ErrBatchTooLarge = errors.New("server: batch too large")
)

// Config tunes the controller service.
type Config struct {
	// Shards is the number of independent ingest queues and tick
	// workers; tenants map to shards by the engine's stable FNV-1a
	// hash. <= 0 defaults like control.EngineOptions.
	Shards int
	// QueueDepth bounds each shard's pending batch queue (default 256).
	// A full queue is the backpressure threshold: further batches are
	// rejected, never buffered.
	QueueDepth int
	// MaxBatchSamples bounds the total samples accepted in one ingest
	// request (default 4096).
	MaxBatchSamples int
	// MaxBodyBytes bounds one ingest request body (JSON or a single
	// binary frame) and each frame on the streaming endpoint (default
	// 8 MiB). Overflow maps to 413.
	MaxBodyBytes int64
	// AlertLogSize / AuditLogSize bound the published alert and
	// actuation rings (default 65536 each).
	AlertLogSize int
	AuditLogSize int
	// RetryAfterS is the Retry-After hint returned with 429 responses
	// (default 1 second).
	RetryAfterS int
	// CheckpointInterval enables periodic background model-snapshot
	// checkpoints at this wall-clock cadence; zero disables them. The
	// latest checkpoint is always retrievable via LastCheckpoint and
	// GET /v1/checkpoint regardless.
	CheckpointInterval time.Duration
	// Telemetry receives pipeline metrics (queue depth gauges, stage
	// latency histograms, end-to-end ingest/alert/actuation latencies).
	// Nil disables instrumentation.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatchSamples <= 0 {
		c.MaxBatchSamples = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.AlertLogSize <= 0 {
		c.AlertLogSize = 65536
	}
	if c.AuditLogSize <= 0 {
		c.AuditLogSize = 65536
	}
	if c.RetryAfterS <= 0 {
		c.RetryAfterS = 1
	}
	return c
}

// TenantConfig declares one managed tenant: its VM set and control
// configuration. The server builds the push-style substrate and control
// loop itself.
type TenantConfig struct {
	// ID names the tenant (unique, non-empty).
	ID string
	// VMs is the tenant's VM set.
	VMs []substrate.VMID
	// Scheme selects the management scheme (default SchemePREPARE).
	Scheme control.Scheme
	// Control tunes the tenant's control loop. MonitorNoiseStd is
	// forced to -1: ingested samples already carry measurement noise,
	// like any replayed trace.
	Control control.Config
	// Chaos optionally injects deterministic faults between the ingest
	// substrate and the control loop (disabled when the zero Plan).
	Chaos chaos.Plan
	// Replay tunes the underlying appendable substrate (allocations,
	// migration model).
	Replay replay.Config
}

// tenant is the server-side state of one managed tenant. After Start,
// the watermark/resume/published-count fields are owned by the tenant's
// shard worker goroutine; everything else is immutable.
type tenant struct {
	id       string
	shardIdx int
	sub      *replay.Substrate
	chaosSub *chaos.Substrate
	app      *replay.App
	ctl      *control.Controller
	vms      map[substrate.VMID]bool
	// intern resolves wire-format VM-ID bytes to the canonical VMID
	// without allocating: map[string] lookups with a []byte-conversion
	// key stay on the stack.
	intern  map[string]substrate.VMID
	vmOrder []substrate.VMID

	watermark  simclock.Time // min over VMs of last ingested sample time
	resumeFrom simclock.Time // ticks <= resumeFrom replay nothing (restored checkpoint)
	nAlerts    int           // alerts already handed to the publish stage
	nSteps     int
}

// shard is one ingest queue plus the tick state of its tenant group.
type shard struct {
	idx      int
	tenants  []*tenant // sorted by ID (engine order)
	queue    chan item
	lastTick simclock.Time
}

const (
	stateNew = iota
	stateRunning
	stateClosed
)

// Server is the controller service. Construct with New, optionally
// Restore a checkpoint, then Start; Handler exposes the HTTP API.
type Server struct {
	cfg     Config
	engine  *control.Engine
	tenants map[string]*tenant
	shards  []*shard
	tel     instruments
	mux     *http.ServeMux

	alerts *eventLog[Alert]
	audit  *eventLog[AuditEntry]
	pubCh  chan pubEvent

	// mu guards the lifecycle state against in-flight Ingest sends: a
	// queue is only closed under the write lock, senders hold the read
	// lock.
	mu    sync.RWMutex
	state int

	failure atomic.Value // error: first pipeline failure, latches readyz to 503

	wg       sync.WaitGroup // shard workers
	pubWG    sync.WaitGroup
	ckptMu   sync.Mutex // serializes checkpoint barriers
	stopCkpt chan struct{}

	lastCkpt atomic.Value // []byte: most recent checkpoint snapshot

	samplesAccepted atomic.Int64
	binaryFrames    atomic.Int64
	samplesApplied  atomic.Int64
	samplesRejected atomic.Int64
	batchesRejected atomic.Int64
	appendErrors    atomic.Int64
	ticks           atomic.Int64
	alertsPublished atomic.Int64
	stepsPublished  atomic.Int64
	checkpoints     atomic.Int64
}

// New builds a controller service over the tenant set. The underlying
// control.Engine supplies canonical ordering, shard placement, and
// model snapshot plumbing; the server drives the shards itself so each
// can tick at its own watermark.
func New(tenants []TenantConfig, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(tenants) == 0 {
		return nil, errors.New("server: at least one tenant is required")
	}
	states := make(map[string]*tenant, len(tenants))
	engTenants := make([]control.Tenant, 0, len(tenants))
	for _, tc := range tenants {
		if tc.ID == "" {
			return nil, errors.New("server: tenant ID is required")
		}
		if states[tc.ID] != nil {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.ID)
		}
		st, err := newTenant(tc, cfg.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", tc.ID, err)
		}
		states[tc.ID] = st
		engTenants = append(engTenants, control.Tenant{ID: tc.ID, Controller: st.ctl})
	}
	engine, err := control.NewEngine(engTenants, control.EngineOptions{Shards: cfg.Shards})
	if err != nil {
		return nil, err
	}

	shards := make([]*shard, engine.NumShards())
	for i := range shards {
		sh := &shard{idx: i, queue: make(chan item, cfg.QueueDepth)}
		for _, id := range engine.ShardTenants(i) {
			st := states[id]
			st.shardIdx = i
			sh.tenants = append(sh.tenants, st)
		}
		shards[i] = sh
	}

	s := &Server{
		cfg:      cfg,
		engine:   engine,
		tenants:  states,
		shards:   shards,
		tel:      newInstruments(cfg.Telemetry, len(shards)),
		alerts:   newEventLog[Alert](cfg.AlertLogSize),
		audit:    newEventLog[AuditEntry](cfg.AuditLogSize),
		pubCh:    make(chan pubEvent, 1024),
		stopCkpt: make(chan struct{}),
	}
	s.mux = s.newMux()
	return s, nil
}

// newTenant wires one tenant: appendable replay substrate, optional
// chaos decoration for the control loop's view, ground-truth SLO app
// over the unwrapped substrate, and the controller itself — the same
// layering the experiment harness uses.
func newTenant(tc TenantConfig, reg *telemetry.Registry) (*tenant, error) {
	if len(tc.VMs) == 0 {
		return nil, errors.New("at least one VM is required")
	}
	sub, err := replay.NewAppendable(tc.VMs, tc.Replay)
	if err != nil {
		return nil, err
	}
	app, err := replay.NewApp(sub)
	if err != nil {
		return nil, err
	}
	scheme := tc.Scheme
	if scheme == 0 {
		scheme = control.SchemePREPARE
	}
	ctlCfg := tc.Control
	// Replayed samples already carry noise; a sampler RNG would also
	// put hidden state outside the checkpoint, breaking warm failover.
	ctlCfg.MonitorNoiseStd = -1
	ctlCfg.Telemetry = reg

	var loopSub substrate.Substrate = sub
	var chaosSub *chaos.Substrate
	if tc.Chaos.Enabled() {
		chaosSub, err = chaos.New(sub, tc.Chaos)
		if err != nil {
			return nil, err
		}
		chaosSub.SetTelemetry(reg)
		loopSub = chaosSub
	}
	ctl, err := control.New(scheme, loopSub, app, ctlCfg)
	if err != nil {
		return nil, err
	}
	st := &tenant{
		id:        tc.ID,
		sub:       sub,
		chaosSub:  chaosSub,
		app:       app,
		ctl:       ctl,
		vms:       make(map[substrate.VMID]bool, len(tc.VMs)),
		intern:    make(map[string]substrate.VMID, len(tc.VMs)),
		watermark: -1,
	}
	st.vmOrder = sub.VMs()
	for _, id := range st.vmOrder {
		st.vms[id] = true
		st.intern[string(id)] = id
	}
	return st, nil
}

// Start launches the shard workers, the publisher, and (when
// configured) the periodic checkpointer.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateNew {
		return ErrNotRunning
	}
	s.state = stateRunning
	s.pubWG.Add(1)
	go s.runPublisher()
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(sh)
	}
	if s.cfg.CheckpointInterval > 0 {
		go s.runCheckpointer()
	}
	return nil
}

// Close drains the pipeline and stops every worker. Batches accepted
// before Close are fully applied and their alerts published before
// Close returns, so a zero-loss shutdown is observable in Stats.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.state != stateRunning {
		s.mu.Unlock()
		return ErrNotRunning
	}
	s.state = stateClosed
	close(s.stopCkpt)
	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	close(s.pubCh)
	s.pubWG.Wait()
	return nil
}

// fail latches the first pipeline error; readyz reports it.
func (s *Server) fail(err error) {
	s.failure.CompareAndSwap(nil, err)
}

// Failure returns the first pipeline error, or nil.
func (s *Server) Failure() error {
	if err, ok := s.failure.Load().(error); ok {
		return err
	}
	return nil
}

// running reports whether the pipeline accepts ingest.
func (s *Server) running() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.state == stateRunning
}

// Tenants lists the managed tenant IDs in canonical order.
func (s *Server) Tenants() []string { return s.engine.Tenants() }

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Stats is a point-in-time snapshot of the pipeline counters.
type Stats struct {
	Tenants         int   `json:"tenants"`
	Shards          int   `json:"shards"`
	SamplesAccepted int64 `json:"samples_accepted"`
	BinaryFrames    int64 `json:"binary_frames"`
	SamplesApplied  int64 `json:"samples_applied"`
	SamplesRejected int64 `json:"samples_rejected"`
	BatchesRejected int64 `json:"batches_rejected"`
	AppendErrors    int64 `json:"append_errors"`
	Ticks           int64 `json:"ticks"`
	AlertsPublished int64 `json:"alerts_published"`
	StepsPublished  int64 `json:"steps_published"`
	Checkpoints     int64 `json:"checkpoints"`
	QueueDepths     []int `json:"queue_depths"`
	// Detectors maps each tenant to its resolved detector spec (e.g.
	// "tan" or "ensemble:tan+ewma@1").
	Detectors map[string]string `json:"detectors"`
	Failure   string            `json:"failure,omitempty"`
}

// Stats snapshots the pipeline counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Tenants:         len(s.tenants),
		Shards:          len(s.shards),
		SamplesAccepted: s.samplesAccepted.Load(),
		BinaryFrames:    s.binaryFrames.Load(),
		SamplesApplied:  s.samplesApplied.Load(),
		SamplesRejected: s.samplesRejected.Load(),
		BatchesRejected: s.batchesRejected.Load(),
		AppendErrors:    s.appendErrors.Load(),
		Ticks:           s.ticks.Load(),
		AlertsPublished: s.alertsPublished.Load(),
		StepsPublished:  s.stepsPublished.Load(),
		Checkpoints:     s.checkpoints.Load(),
		QueueDepths:     make([]int, len(s.shards)),
		Detectors:       make(map[string]string, len(s.tenants)),
	}
	for i, sh := range s.shards {
		st.QueueDepths[i] = len(sh.queue)
	}
	for id, t := range s.tenants {
		st.Detectors[id] = t.ctl.DetectorSpec().String()
	}
	if err := s.Failure(); err != nil {
		st.Failure = err.Error()
	}
	return st
}
