#!/usr/bin/env bash
# check_bench_regression.sh BASE HEAD
#
# Compares allocs/op between two `go test -bench -benchmem` outputs and
# fails when any scratch-path benchmark (the allocation-sensitive hot
# paths: Markov series prediction, predictor windows, TAN scratch
# scoring, the engine fleet tick, the per-VM detector fleet tick
# BenchmarkDetector*) regressed by more than
# BENCH_GATE_THRESHOLD percent (default 20). Benchmarks that report a
# throughput metric — vm-steps/sec (BenchmarkEngineVMSteps, the
# detector fleet tick), decisions/sec (BenchmarkPlacementDecision) or
# samples/sec (BenchmarkIngestDecode, the wire-to-store decode path) —
# are also gated on it: head throughput more than BENCH_GATE_THRESHOLD
# percent below base fails. Benchmarks present only in HEAD are
# reported but never fail the gate, so adding benchmarks in a PR is
# safe.
set -euo pipefail

BASE=${1:?usage: check_bench_regression.sh base.txt head.txt}
HEAD=${2:?usage: check_bench_regression.sh base.txt head.txt}
PATTERN=${BENCH_GATE_PATTERN:-'PredictSeries|PredictWindow|Scratch|MarginalScore|DisabledChaos|Retrain|EngineVMSteps|FleetScoreWindow|Detector|PlacementDecision|IngestDecode'}
THRESHOLD=${BENCH_GATE_THRESHOLD:-20}

if ! grep -Eq 'allocs/op' "$BASE"; then
  echo "no -benchmem data in $BASE (benchmarks absent at merge base); skipping gate"
  exit 0
fi

awk -v pattern="$PATTERN" -v threshold="$THRESHOLD" '
  FNR == 1 { fileno++ }
  $1 ~ /^Benchmark/ && / allocs\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    if (name !~ pattern) next
    allocs = ""
    steps = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "allocs/op") allocs = $(i - 1)
      if ($i == "vm-steps/sec" || $i == "decisions/sec" || $i == "samples/sec") {
        steps = $(i - 1)
        sunit[name] = $i
      }
    }
    if (allocs == "") next
    if (fileno == 1) {
      bsum[name] += allocs; bcnt[name]++
      if (steps != "") { bssum[name] += steps; bscnt[name]++ }
    } else {
      hsum[name] += allocs; hcnt[name]++
      if (steps != "") { hssum[name] += steps; hscnt[name]++ }
    }
  }
  END {
    status = 0
    n = 0
    # Benchmarks that exist at the merge base but not in head: notice,
    # never fail — renames and removals land with the PR that makes
    # them.
    for (name in bsum) {
      if (!(name in hsum))
        printf "gone %-45s (present at merge base, absent from head; skipping)\n", name
    }
    for (name in hsum) {
      n++
      head = hsum[name] / hcnt[name]
      # A benchmark absent from the base branch is skipped with a
      # notice, never failed: a PR can introduce a benchmark and its
      # gate together, and the next PR gets merge-base data to compare.
      if (!(name in bsum)) {
        printf "new  %-45s %.1f allocs/op (absent from merge base; skipping gate)\n", name, head
        continue
      }
      base = bsum[name] / bcnt[name]
      # The +0.5 floor keeps a zero-alloc base from tripping on noise
      # while still failing a genuine 0 -> 1 allocation regression.
      if (head > base * (1 + threshold / 100) && head > base + 0.5) {
        printf "FAIL %-45s allocs/op %.1f -> %.1f (>%d%% regression)\n", name, base, head, threshold
        status = 1
      } else {
        printf "ok   %-45s allocs/op %.1f -> %.1f\n", name, base, head
      }
      # Throughput gate: vm-steps/sec and decisions/sec are
      # higher-is-better, so the fail direction flips relative to the
      # allocation gate above. A throughput metric only one side
      # reports is skipped with a notice (newly added or retired
      # gauge), like a new benchmark.
      if (name in hssum && !(name in bssum)) {
        printf "new  %-45s %s %.0f (absent from merge base; skipping gate)\n", name, sunit[name], hssum[name] / hscnt[name]
      }
      if (name in hssum && name in bssum) {
        hs = hssum[name] / hscnt[name]
        bs = bssum[name] / bscnt[name]
        if (hs < bs * (1 - threshold / 100)) {
          printf "FAIL %-45s %s %.0f -> %.0f (>%d%% slowdown)\n", name, sunit[name], bs, hs, threshold
          status = 1
        } else {
          printf "ok   %-45s %s %.0f -> %.0f\n", name, sunit[name], bs, hs
        }
      }
    }
    if (n == 0) print "no scratch-path benchmarks matched pattern " pattern
    exit status
  }
' "$BASE" "$HEAD"
