package markov

import (
	"math"
	"math/rand"
	"testing"
)

// chainPair builds a scalar/batch pair of identically trained chains.
func chainPair(t *testing.T, order, states int, seq []int) (Predictor, Predictor) {
	t.Helper()
	build := func() Predictor {
		var (
			ch  Predictor
			err error
		)
		if order == 1 {
			ch, err = NewSimpleChain(states)
		} else {
			ch, err = NewTwoDepChain(states)
		}
		if err != nil {
			t.Fatalf("new chain: %v", err)
		}
		for _, b := range seq {
			if err := ch.Observe(b); err != nil {
				t.Fatalf("observe: %v", err)
			}
		}
		return ch
	}
	return build(), build()
}

// assertSeriesBitIdentical compares a scalar PredictSeries result with a
// batch PredictSeriesInto result bit for bit.
func assertSeriesBitIdentical(t *testing.T, scalar, batch [][]float64, label string) {
	t.Helper()
	if len(scalar) != len(batch) {
		t.Fatalf("%s: step count %d vs %d", label, len(scalar), len(batch))
	}
	for s := range scalar {
		for j := range scalar[s] {
			a, b := scalar[s][j], batch[s][j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%s: step %d bin %d: scalar %v (%#x) vs batch %v (%#x)",
					label, s, j, a, math.Float64bits(a), b, math.Float64bits(b))
			}
		}
	}
}

// TestPredictSeriesIntoMatchesPredictSeries drives random observation
// streams through scalar and batch chains, interleaving predictions with
// further observations so the incremental row refresh is exercised, and
// requires bit-identical series throughout.
func TestPredictSeriesIntoMatchesPredictSeries(t *testing.T) {
	for _, tc := range []struct {
		name          string
		order, states int
	}{
		{"simple-8", 1, 8},
		{"twodep-8", 2, 8},
		{"simple-5", 1, 5},
		{"twodep-5", 2, 5},
		{"twodep-12", 2, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			seq := make([]int, 200)
			for i := range seq {
				// A sticky walk concentrates mass on few combined states,
				// leaving plenty of backoff rows to get right.
				if i > 0 && rng.Float64() < 0.6 {
					seq[i] = seq[i-1]
				} else {
					seq[i] = rng.Intn(tc.states)
				}
			}
			scalar, batch := chainPair(t, tc.order, tc.states, seq)
			out := seriesSlices(24, tc.states)
			for round := 0; round < 30; round++ {
				steps := 1 + rng.Intn(24)
				batch.PredictSeriesInto(out[:steps])
				assertSeriesBitIdentical(t, scalar.PredictSeries(steps), out[:steps], tc.name)
				// Observe a few more bins on both chains between rounds so
				// dirty-column tracking sees single-row invalidations.
				for k := 0; k < 1+rng.Intn(3); k++ {
					b := rng.Intn(tc.states)
					if err := scalar.Observe(b); err != nil {
						t.Fatal(err)
					}
					if err := batch.Observe(b); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestPredictSeriesIntoUntrained covers the uniform fallbacks.
func TestPredictSeriesIntoUntrained(t *testing.T) {
	sc, _ := NewSimpleChain(8)
	td, _ := NewTwoDepChain(8)
	tdOne, _ := NewTwoDepChain(8)
	if err := tdOne.Observe(3); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []Predictor{sc, td, tdOne} {
		out := seriesSlices(5, 8)
		ch.PredictSeriesInto(out)
		assertSeriesBitIdentical(t, ch.PredictSeries(5), out, "untrained")
	}
}

// TestPredictSeriesBatchSharedArena runs a fleet of chains through one
// arena and checks every chain against its scalar twin, including
// steady-state allocation freedom.
func TestPredictSeriesBatchSharedArena(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nChains, steps = 13, 24
	scalars := make([]Predictor, nChains)
	batches := make([]Predictor, nChains)
	for i := range scalars {
		seq := make([]int, 150)
		for k := range seq {
			seq[k] = rng.Intn(8)
		}
		scalars[i], batches[i] = chainPair(t, 2, 8, seq)
	}
	var arena BatchArena
	series := PredictSeriesBatch(batches, steps, &arena)
	for i := range scalars {
		assertSeriesBitIdentical(t, scalars[i].PredictSeries(steps), series[i], "fleet")
	}
	// Steady state: repeated batch calls must not allocate.
	allocs := testing.AllocsPerRun(20, func() {
		PredictSeriesBatch(batches, steps, &arena)
	})
	if allocs != 0 {
		t.Fatalf("PredictSeriesBatch steady state allocates %.1f/op, want 0", allocs)
	}
}

// TestRefreshRowsAfterSnapshotRestore makes sure a chain rebuilt from a
// snapshot (counts copied in without Observe calls) still refreshes all
// rows on its first batch prediction.
func TestRefreshRowsAfterSnapshotRestore(t *testing.T) {
	orig, _ := NewTwoDepChain(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		if err := orig.Observe(rng.Intn(8)); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := FromSnapshot(orig.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	out := seriesSlices(10, 8)
	restored.PredictSeriesInto(out)
	assertSeriesBitIdentical(t, orig.PredictSeries(10), out, "restored")
}

func BenchmarkTwoDepChainPredictSeriesInto(b *testing.B) {
	ch, _ := NewTwoDepChain(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 240; i++ {
		if err := ch.Observe(rng.Intn(8)); err != nil {
			b.Fatal(err)
		}
	}
	out := seriesSlices(24, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.PredictSeriesInto(out)
	}
}

// BenchmarkTwoDepChainPredictSeriesIntoOnline interleaves one Observe
// per prediction, matching the control loop's steady state where each
// tick dirties one transition row before predicting.
func BenchmarkTwoDepChainPredictSeriesIntoOnline(b *testing.B) {
	ch, _ := NewTwoDepChain(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 240; i++ {
		if err := ch.Observe(rng.Intn(8)); err != nil {
			b.Fatal(err)
		}
	}
	out := seriesSlices(24, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Observe(i & 7); err != nil {
			b.Fatal(err)
		}
		ch.PredictSeriesInto(out)
	}
}

func BenchmarkSimpleChainPredictSeriesInto(b *testing.B) {
	ch, _ := NewSimpleChain(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 240; i++ {
		if err := ch.Observe(rng.Intn(8)); err != nil {
			b.Fatal(err)
		}
	}
	out := seriesSlices(24, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.PredictSeriesInto(out)
	}
}
