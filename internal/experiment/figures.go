package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"prepare/internal/control"
	"prepare/internal/faults"
	"prepare/internal/predict"
	"prepare/internal/prevent"
	"prepare/internal/simclock"
)

// Schemes in presentation order (matching the paper's bar groups).
func allSchemes() []control.Scheme {
	return []control.Scheme{control.SchemeNone, control.SchemeReactive, control.SchemePREPARE}
}

func allFaults() []faults.Kind {
	return []faults.Kind{faults.MemoryLeak, faults.CPUHog, faults.Bottleneck}
}

func allApps() []AppKind { return []AppKind{SystemS, RUBiS} }

// ViolationCell is one bar of Figures 6/8: the SLO violation time of one
// app × fault × scheme combination, mean ± stddev over repetitions.
type ViolationCell struct {
	App    AppKind
	Fault  faults.Kind
	Scheme control.Scheme
	Stat   Stat
}

// FigureSLOViolation reproduces Figure 6 (policy = ScalingFirst) or
// Figure 8 (policy = MigrationOnly): SLO violation time for every
// app × fault × scheme cell, over `seeds` repetitions starting at
// baseSeed. The full grid — every cell × every seed — is flattened into
// one batch and fanned out over the package worker pool; cell order and
// results are identical to a serial sweep.
func FigureSLOViolation(policy prevent.Policy, seeds int, baseSeed int64) ([]ViolationCell, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiment: repetitions %d must be >= 1", seeds)
	}
	var scenarios []Scenario
	var cells []ViolationCell
	for _, app := range allApps() {
		for _, fault := range allFaults() {
			for _, scheme := range allSchemes() {
				cells = append(cells, ViolationCell{App: app, Fault: fault, Scheme: scheme})
				for s := 0; s < seeds; s++ {
					scenarios = append(scenarios, Scenario{
						App: app, Fault: fault, Scheme: scheme,
						Policy: policy, Seed: baseSeed + int64(s),
					})
				}
			}
		}
	}
	results, err := RunAll(scenarios, BatchOptions{})
	if err != nil {
		return nil, err
	}
	values := make([]float64, seeds)
	for ci := range cells {
		for s := 0; s < seeds; s++ {
			values[s] = float64(results[ci*seeds+s].EvalViolationSeconds)
		}
		cells[ci].Stat = NewStat(values)
	}
	return cells, nil
}

// FormatViolationCells renders Figure 6/8 cells as a text table.
func FormatViolationCells(title string, cells []ViolationCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-11s %-22s %15s %12s %12s\n",
		"app", "fault", "scheme", "violation(s)", "vs none", "vs reactive")
	baseline := map[string]float64{}
	reactive := map[string]float64{}
	for _, c := range cells {
		key := c.App.String() + "/" + c.Fault.String()
		switch c.Scheme {
		case control.SchemeNone:
			baseline[key] = c.Stat.Mean
		case control.SchemeReactive:
			reactive[key] = c.Stat.Mean
		}
	}
	for _, c := range cells {
		key := c.App.String() + "/" + c.Fault.String()
		vsNone, vsReactive := "", ""
		if c.Scheme == control.SchemePREPARE {
			vsNone = fmt.Sprintf("-%.0f%%", Reduction(baseline[key], c.Stat.Mean))
			vsReactive = fmt.Sprintf("-%.0f%%", Reduction(reactive[key], c.Stat.Mean))
		}
		fmt.Fprintf(&b, "%-8s %-11s %-22s %15s %12s %12s\n",
			c.App, c.Fault, c.Scheme, c.Stat, vsNone, vsReactive)
	}
	return b.String()
}

// TraceSeries is one curve of Figures 7/9: the SLO metric trace of one
// scheme around the second fault injection.
type TraceSeries struct {
	Scheme control.Scheme
	Points []TracePoint
}

// FigureTraces reproduces one subplot of Figure 7 (scaling) or Figure 9
// (migration): the sampled SLO metric trace of all three schemes during
// the second fault injection (plus margins).
func FigureTraces(app AppKind, fault faults.Kind, policy prevent.Policy, seed int64) ([]TraceSeries, error) {
	schemes := allSchemes()
	scenarios := make([]Scenario, len(schemes))
	for i, scheme := range schemes {
		scenarios[i] = Scenario{App: app, Fault: fault, Scheme: scheme, Policy: policy, Seed: seed}
	}
	results, err := RunAll(scenarios, BatchOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiment: trace: %w", err)
	}
	out := make([]TraceSeries, len(results))
	for i, res := range results {
		from := simclock.Time(res.Scenario.Inject2[0] - 60)
		to := simclock.Time(res.Scenario.Inject2[1] + 120)
		var window []TracePoint
		for _, p := range res.Trace {
			if !p.Time.Before(from) && p.Time.Before(to) {
				window = append(window, p)
			}
		}
		out[i] = TraceSeries{Scheme: schemes[i], Points: window}
	}
	return out, nil
}

// FormatTraces renders trace series as columns sampled every stride
// seconds.
func FormatTraces(title, metricName string, series []TraceSeries, stride int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, metricName)
	fmt.Fprintf(&b, "%-8s", "t(s)")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Scheme)
	}
	fmt.Fprintln(&b)
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	n := len(series[0].Points)
	for i := 0; i < n; i += int(stride) {
		fmt.Fprintf(&b, "%-8d", series[0].Points[i].Time.Seconds())
		for _, s := range series {
			if i < len(s.Points) {
				mark := " "
				if s.Points[i].Violated {
					mark = "*"
				}
				fmt.Fprintf(&b, " %21.1f%s", s.Points[i].Metric, mark)
			}
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b, "(* marks SLO violation)")
	return b.String()
}

// AccuracyCurve labels one accuracy sweep line (e.g., "per-component" vs
// "monolithic").
type AccuracyCurve struct {
	Label  string
	Points []AccuracyPoint
}

// FigurePerComponentVsMonolithic reproduces one subplot of Figure 10:
// prediction accuracy of the per-component scheme versus the monolithic
// model across look-ahead windows.
func FigurePerComponentVsMonolithic(app AppKind, fault faults.Kind, seed int64) ([]AccuracyCurve, error) {
	ds, err := CollectDataset(Scenario{App: app, Fault: fault, Seed: seed})
	if err != nil {
		return nil, err
	}
	return sweepCurves(ds, []curveSpec{
		{label: "per-component", lookaheads: DefaultLookaheads(), opts: AccuracyOptions{}},
		{label: "monolithic", lookaheads: DefaultLookaheads(), opts: AccuracyOptions{Monolithic: true}},
	})
}

// FigureMarkovComparison reproduces one subplot of Figure 11: the
// 2-dependent Markov model versus the simple Markov model.
func FigureMarkovComparison(app AppKind, fault faults.Kind, seed int64) ([]AccuracyCurve, error) {
	ds, err := CollectDataset(Scenario{App: app, Fault: fault, Seed: seed})
	if err != nil {
		return nil, err
	}
	return sweepCurves(ds, []curveSpec{
		{label: "2-dep. Markov", lookaheads: DefaultLookaheads(),
			opts: AccuracyOptions{Predict: predict.Config{Order: predict.TwoDependent}}},
		{label: "simple Markov", lookaheads: DefaultLookaheads(),
			opts: AccuracyOptions{Predict: predict.Config{Order: predict.SimpleMarkov}}},
	})
}

// FigureAlarmFiltering reproduces Figure 12: accuracy under k=1,2,3 of
// W=4 false alarm filtering for a bottleneck fault in RUBiS.
func FigureAlarmFiltering(seed int64) ([]AccuracyCurve, error) {
	ds, err := CollectDataset(Scenario{App: RUBiS, Fault: faults.Bottleneck, Seed: seed})
	if err != nil {
		return nil, err
	}
	specs := make([]curveSpec, 0, 3)
	for _, k := range []int{1, 2, 3} {
		specs = append(specs, curveSpec{
			label:      fmt.Sprintf("k=%d,W=4", k),
			lookaheads: DefaultLookaheads(),
			opts:       AccuracyOptions{FilterK: k, FilterW: 4},
		})
	}
	return sweepCurves(ds, specs)
}

// FigureSamplingInterval reproduces Figure 13: accuracy under 1, 5, and
// 10 second sampling intervals for a bottleneck fault in RUBiS.
func FigureSamplingInterval(seed int64) ([]AccuracyCurve, error) {
	intervals := []int64{1, 5, 10}
	out := make([]AccuracyCurve, len(intervals))
	// Each interval needs its own dataset (the monitoring cadence changes
	// the collected samples), so the fan-out is per curve; the nested
	// accuracy sweep parallelizes the look-ahead windows within each.
	err := Runner{}.ForEach(context.Background(), len(intervals), func(_ context.Context, i int) error {
		interval := intervals[i]
		ds, err := CollectDataset(Scenario{
			App: RUBiS, Fault: faults.Bottleneck, Seed: seed,
			SamplingIntervalS: interval,
		})
		if err != nil {
			return err
		}
		points, err := AccuracySweep(ds, []int64{10, 20, 30, 40, 50}, AccuracyOptions{
			Predict: predict.Config{SamplingIntervalS: interval},
		})
		if err != nil {
			return err
		}
		out[i] = AccuracyCurve{Label: fmt.Sprintf("%ds interval", interval), Points: points}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatAccuracyCurves renders accuracy curves as a text table with A_T
// and A_F columns per curve.
func FormatAccuracyCurves(title string, curves []AccuracyCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s", "lookahead(s)")
	for _, c := range curves {
		fmt.Fprintf(&b, " %14s", "AT("+c.Label+")")
		fmt.Fprintf(&b, " %14s", "AF("+c.Label+")")
	}
	fmt.Fprintln(&b)
	if len(curves) == 0 {
		return b.String()
	}
	// Collect the union of lookaheads (curves normally share them).
	seen := map[int64]bool{}
	var las []int64
	for _, c := range curves {
		for _, p := range c.Points {
			if !seen[p.LookaheadS] {
				seen[p.LookaheadS] = true
				las = append(las, p.LookaheadS)
			}
		}
	}
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	for _, la := range las {
		fmt.Fprintf(&b, "%-14d", la)
		for _, c := range curves {
			found := false
			for _, p := range c.Points {
				if p.LookaheadS == la {
					fmt.Fprintf(&b, " %13.1f%%", 100*p.AT)
					fmt.Fprintf(&b, " %13.1f%%", 100*p.AF)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, " %14s %14s", "-", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
