package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteAccuracyCSV dumps accuracy curves as plotting-ready CSV:
// lookahead_s, then AT/AF columns per curve.
func WriteAccuracyCSV(w io.Writer, curves []AccuracyCurve) error {
	if len(curves) == 0 {
		return fmt.Errorf("experiment: no curves to export")
	}
	cw := csv.NewWriter(w)
	header := []string{"lookahead_s"}
	for _, c := range curves {
		header = append(header, "at_"+c.Label, "af_"+c.Label)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write header: %w", err)
	}
	// Index points by lookahead per curve.
	type key struct {
		curve int
		la    int64
	}
	points := make(map[key]AccuracyPoint)
	seen := map[int64]bool{}
	var las []int64
	for ci, c := range curves {
		for _, p := range c.Points {
			points[key{ci, p.LookaheadS}] = p
			if !seen[p.LookaheadS] {
				seen[p.LookaheadS] = true
				las = append(las, p.LookaheadS)
			}
		}
	}
	for i := 1; i < len(las); i++ {
		for j := i; j > 0 && las[j] < las[j-1]; j-- {
			las[j], las[j-1] = las[j-1], las[j]
		}
	}
	for _, la := range las {
		row := []string{strconv.FormatInt(la, 10)}
		for ci := range curves {
			p, ok := points[key{ci, la}]
			if !ok {
				row = append(row, "", "")
				continue
			}
			row = append(row,
				strconv.FormatFloat(p.AT, 'f', 4, 64),
				strconv.FormatFloat(p.AF, 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceCSV dumps trace series as plotting-ready CSV:
// time_s, then metric/violated columns per scheme.
func WriteTraceCSV(w io.Writer, series []TraceSeries) error {
	if len(series) == 0 {
		return fmt.Errorf("experiment: no series to export")
	}
	cw := csv.NewWriter(w)
	header := []string{"time_s"}
	for _, s := range series {
		header = append(header, "metric_"+s.Scheme.String(), "violated_"+s.Scheme.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write header: %w", err)
	}
	n := 0
	for _, s := range series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		var row []string
		for si, s := range series {
			if i >= len(s.Points) {
				if si == 0 {
					row = append(row, "")
				}
				row = append(row, "", "")
				continue
			}
			p := s.Points[i]
			if si == 0 {
				row = append(row, strconv.FormatInt(p.Time.Seconds(), 10))
			}
			row = append(row,
				strconv.FormatFloat(p.Metric, 'f', 3, 64),
				strconv.FormatBool(p.Violated))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteViolationCSV dumps Figure 6/8 cells as CSV rows.
func WriteViolationCSV(w io.Writer, cells []ViolationCell) error {
	if len(cells) == 0 {
		return fmt.Errorf("experiment: no cells to export")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "fault", "scheme", "mean_s", "std_s", "n"}); err != nil {
		return fmt.Errorf("experiment: write header: %w", err)
	}
	for _, c := range cells {
		row := []string{
			c.App.String(), c.Fault.String(), c.Scheme.String(),
			strconv.FormatFloat(c.Stat.Mean, 'f', 2, 64),
			strconv.FormatFloat(c.Stat.Std, 'f', 2, 64),
			strconv.Itoa(c.Stat.N),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
