package bayes

import (
	"math/rand"
	"testing"
)

// benchModel trains a 13-attribute, 8-bin model — the shape of PREPARE's
// per-VM classifier — and returns marginals resembling a Markov
// predictor's output.
func benchModel(b *testing.B) (*Model, [][]float64, []int) {
	b.Helper()
	const attrs, bins = 13, 8
	rng := rand.New(rand.NewSource(1))
	binsPer := make([]int, attrs)
	for j := range binsPer {
		binsPer[j] = bins
	}
	instances := make([]Instance, 600)
	for i := range instances {
		vals := make([]int, attrs)
		for j := range vals {
			vals[j] = rng.Intn(bins)
		}
		instances[i] = Instance{Bins: vals, Abnormal: i%5 == 0}
	}
	m, err := Train(instances, binsPer, Options{})
	if err != nil {
		b.Fatal(err)
	}
	marginals := make([][]float64, attrs)
	obs := make([]int, attrs)
	for j := range marginals {
		dist := make([]float64, bins)
		total := 0.0
		for v := range dist {
			dist[v] = rng.Float64()
			total += dist[v]
		}
		for v := range dist {
			dist[v] /= total
		}
		marginals[j] = dist
		obs[j] = rng.Intn(bins)
	}
	return m, marginals, obs
}

func BenchmarkScoreMarginals(b *testing.B) {
	m, marginals, _ := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.ScoreMarginals(marginals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreMarginalsScratch(b *testing.B) {
	m, marginals, _ := benchModel(b)
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.ScoreMarginalsScratch(marginals, &sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarginalScore(b *testing.B) {
	m, marginals, _ := benchModel(b)
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MarginalScore(marginals, &sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttributeStrengths(b *testing.B) {
	m, _, obs := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AttributeStrengths(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttributeStrengthsScratch(b *testing.B) {
	m, _, obs := benchModel(b)
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AttributeStrengthsScratch(obs, &sc); err != nil {
			b.Fatal(err)
		}
	}
}
