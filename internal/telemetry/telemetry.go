// Package telemetry gives the PREPARE control loop runtime visibility:
// a dependency-free metrics registry (atomic counters, gauges and
// lock-cheap fixed-bucket histograms) plus a ring-buffered structured
// event tracer recording what the loop decided and why (alerts raised,
// alerts suppressed by the k-of-W filter, prediction windows, cause
// rankings, prevention actuations, validation rollbacks).
//
// Instrumentation is designed to disappear when telemetry is off:
// every instrument method is nil-safe (a nil *Counter, *Gauge,
// *Histogram or *Registry no-ops), so instrumented code holds plain
// pointers that are nil in the disabled configuration and pays only a
// nil check — no allocations, no atomics — on the hot paths PR 1
// optimized. The disabled-mode cost is pinned by
// BenchmarkDisabledInstruments and by the predict/markov allocation
// benchmarks.
//
// Concurrency: every instrument is safe for concurrent use. Registries
// are safe to snapshot and merge while experiment workers record into
// per-run registries in parallel.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// DefaultTraceCapacity bounds the event ring buffer when Options does
// not say otherwise.
const DefaultTraceCapacity = 4096

// Options configures a Registry.
type Options struct {
	// TraceCapacity bounds the event ring buffer (default
	// DefaultTraceCapacity). Once full, new events overwrite the oldest
	// and the dropped count grows.
	TraceCapacity int
}

// Registry holds named instruments and the event trace. The zero value
// is not usable; call New. A nil *Registry is the disabled mode: every
// method no-ops (returning nil instruments, which themselves no-op).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
}

// New builds an empty registry.
func New(opts Options) *Registry {
	capacity := opts.TraceCapacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    newTrace(capacity),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a valid no-op gauge) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram (LatencyBuckets
// layout), creating it on first use. Returns nil (a valid no-op
// histogram) when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, LatencyBuckets)
}

// HistogramWith returns the named histogram with the given fixed bucket
// upper bounds (ascending; an implicit +Inf bucket is appended). The
// bounds of an already-existing histogram are kept. Returns nil when r
// is nil.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Trace returns the registry's event trace (nil when r is nil).
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// Emit records a structured event (no-op when r is nil). Hot callers
// should guard the call behind a nil check on the registry so the
// variadic fields never allocate in the disabled mode.
func (r *Registry) Emit(simTime int64, vm, stage, kind, detail string, fields ...Field) {
	if r == nil {
		return
	}
	r.trace.Emit(Event{
		SimTime: simTime,
		VM:      vm,
		Stage:   stage,
		Kind:    kind,
		Detail:  detail,
		Fields:  fields,
	})
}

// global is the process-wide default registry; nil means telemetry is
// disabled (the default).
var global atomic.Pointer[Registry]

// Enable installs (or returns the already-installed) process-wide
// default registry and returns it.
func Enable() *Registry {
	for {
		if r := global.Load(); r != nil {
			return r
		}
		r := New(Options{})
		if global.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable clears the process-wide default registry; instrumented code
// reverts to the zero-cost disabled mode on its next wiring.
func Disable() { global.Store(nil) }

// Default returns the process-wide registry, or nil when telemetry is
// disabled.
func Default() *Registry { return global.Load() }
