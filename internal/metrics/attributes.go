// Package metrics defines the system-level attributes PREPARE monitors,
// along with sample vectors, labeled time series, summary statistics and
// value discretizers used by the prediction models.
//
// The paper's VM monitor collects 13 resource attributes per VM every
// sampling interval (default 5 s): CPU, memory, network, disk and load
// statistics. This package gives those attributes stable identities so
// every downstream component (Markov value predictors, the TAN
// classifier, cause inference, prevention actuation) can refer to them
// consistently.
package metrics

import "fmt"

// Attribute identifies one of the system-level metrics collected per VM.
type Attribute int

// The 13 monitored attributes, mirroring the paper's domain-0 collection
// (CPU usage, free memory, network traffic, disk I/O statistics, load).
const (
	CPUUser Attribute = iota + 1
	CPUSystem
	CPUTotal
	FreeMem
	MemUsed
	NetIn
	NetOut
	DiskRead
	DiskWrite
	Load1
	Load5
	CtxSwitch
	PageFaults
)

// NumAttributes is the number of monitored attributes per VM.
const NumAttributes = 13

var attributeNames = map[Attribute]string{
	CPUUser:    "cpu_user",
	CPUSystem:  "cpu_system",
	CPUTotal:   "cpu_total",
	FreeMem:    "free_mem",
	MemUsed:    "mem_used",
	NetIn:      "net_in",
	NetOut:     "net_out",
	DiskRead:   "disk_read",
	DiskWrite:  "disk_write",
	Load1:      "load1",
	Load5:      "load5",
	CtxSwitch:  "ctx_switch",
	PageFaults: "page_faults",
}

// String returns the canonical snake_case name of the attribute.
func (a Attribute) String() string {
	if name, ok := attributeNames[a]; ok {
		return name
	}
	return fmt.Sprintf("attribute(%d)", int(a))
}

// Valid reports whether a names one of the 13 monitored attributes.
func (a Attribute) Valid() bool {
	_, ok := attributeNames[a]
	return ok
}

// Index returns the 0-based position of the attribute within a sample
// vector. It panics on invalid attributes, which indicates a programming
// error rather than a runtime condition.
func (a Attribute) Index() int {
	if !a.Valid() {
		panic(fmt.Sprintf("metrics: invalid attribute %d", int(a)))
	}
	return int(a) - 1
}

// AttributeByName resolves a canonical name back to its Attribute. The
// boolean result follows the comma-ok idiom.
func AttributeByName(name string) (Attribute, bool) {
	for attr, n := range attributeNames {
		if n == name {
			return attr, true
		}
	}
	return 0, false
}

// AllAttributes returns the 13 attributes in vector order. The slice is
// freshly allocated so callers may modify it.
func AllAttributes() []Attribute {
	attrs := make([]Attribute, 0, NumAttributes)
	for i := 1; i <= NumAttributes; i++ {
		attrs = append(attrs, Attribute(i))
	}
	return attrs
}
