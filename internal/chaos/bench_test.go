package chaos

import (
	"testing"

	"prepare/internal/simclock"
)

// TestZeroRatePathAllocationFree pins the decorator's hot-loop promise:
// with every rate at zero the interposed Sample/actuator calls add no
// allocations over the inner substrate, so leaving a disabled chaos
// layer wired in costs nothing but branch checks.
func TestZeroRatePathAllocationFree(t *testing.T) {
	s, err := New(newInnerStub("vm1"), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the per-VM maps so steady-state, not first-insert, is measured.
	s.Advance(1)
	if _, err := s.Sample("vm1"); err != nil {
		t.Fatal(err)
	}
	now := simclock.Time(2)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Advance(now)
		if _, err := s.Sample("vm1"); err != nil {
			t.Fatal(err)
		}
		if err := s.ScaleCPU(now, "vm1", 100); err != nil {
			t.Fatal(err)
		}
		if err := s.Migrate(now, "vm1", 100, 512); err != nil {
			t.Fatal(err)
		}
		s.MigrationSeconds(512)
	})
	if allocs != 0 {
		t.Errorf("disabled chaos path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkDisabledChaosSample measures the zero-rate interception
// overhead on the per-tick sampling path (map lookups and rate checks);
// CI's bench job gates its allocs/op alongside the other hot paths.
func BenchmarkDisabledChaosSample(b *testing.B) {
	s, err := New(newInnerStub("vm1"), Plan{})
	if err != nil {
		b.Fatal(err)
	}
	s.Advance(1)
	if _, err := s.Sample("vm1"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample("vm1"); err != nil {
			b.Fatal(err)
		}
	}
}
