package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"prepare/internal/telemetry"
	"prepare/internal/wire"
)

// ingestRequest is the POST /v1/samples body.
type ingestRequest struct {
	Batches []Batch `json:"batches"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// alertsResponse is the GET /v1/alerts body: alerts with sequence
// numbers strictly greater than the since cursor, plus the cursor to
// pass next. Truncated means the ring evicted records between the
// cursor and FirstSeq — the client fell too far behind.
type alertsResponse struct {
	Alerts    []Alert `json:"alerts"`
	Next      uint64  `json:"next"`
	FirstSeq  uint64  `json:"first_seq"`
	Truncated bool    `json:"truncated"`
}

type auditResponse struct {
	Actions   []AuditEntry `json:"actions"`
	Next      uint64       `json:"next"`
	FirstSeq  uint64       `json:"first_seq"`
	Truncated bool         `json:"truncated"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/samples            — batched sample ingest: JSON, or one binary
//	                              columnar frame when Content-Type is
//	                              application/x-prepare-columnar
//	                              (429 + Retry-After on backpressure)
//	POST /v1/stream             — persistent binary ingest: length-prefixed
//	                              columnar frames on one long-lived connection
//	GET  /v1/alerts?since=&limit= — confirmed alerts after the cursor
//	GET  /v1/audit?since=&limit=  — actuation audit log after the cursor
//	GET  /v1/tenants/{id}/model — the tenant's current model snapshot
//	GET  /v1/checkpoint         — a fresh warm-failover checkpoint
//	GET  /v1/stats              — pipeline counters
//	GET  /healthz, /readyz      — liveness / readiness
//	GET  /metrics, /trace       — telemetry (when enabled)
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/samples", s.handleIngest)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("GET /v1/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/tenants/{id}/model", s.handleModel)
	mux.HandleFunc("GET /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.Telemetry != nil {
		th := telemetry.Handler(func() *telemetry.Registry { return s.cfg.Telemetry })
		mux.Handle("GET /metrics", th)
		mux.Handle("GET /trace", th)
	}
	return mux
}

// encBuf is the pooled response-encoding scratch: the encoder is bound
// to the buffer once at pool-New time, so a steady-state response costs
// neither a fresh json.Encoder nor a fresh buffer.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	eb := &encBuf{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	eb := encPool.Get().(*encBuf)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		encPool.Put(eb)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(eb.buf.Bytes())
	encPool.Put(eb)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// isBinaryIngest reports whether the request negotiated the columnar
// wire format.
func isBinaryIngest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == wire.ContentType
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if isBinaryIngest(r) {
		frame, err := io.ReadAll(body)
		if err != nil {
			writeIngestReadError(w, err)
			return
		}
		res, err := s.IngestFrame(frame)
		writeIngestResult(w, res, err)
		return
	}
	payload, err := io.ReadAll(body)
	if err != nil {
		writeIngestReadError(w, err)
		return
	}
	res, err := s.IngestJSON(payload)
	writeIngestResult(w, res, err)
}

// IngestJSON decodes one JSON ingest request body and enqueues it —
// the exact decode+validate path the HTTP handler runs, callable
// in-process by the load generator to measure the JSON transport
// without network variance.
func (s *Server) IngestJSON(body []byte) (IngestResult, error) {
	start := time.Now()
	var req ingestRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return IngestResult{}, fmt.Errorf("%w: decode request: %v", ErrBadBatch, err)
	}
	s.tel.decodeLatency.ObserveSince(start)
	return s.Ingest(req.Batches)
}

// writeIngestReadError maps body-read failures: MaxBytesReader overflow
// is the client's fault and sized like ErrBatchTooLarge (413),
// everything else is a malformed request (400).
func writeIngestReadError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("%w: body exceeds %d bytes", ErrBatchTooLarge, tooLarge.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// writeIngestResult maps Ingest/IngestFrame outcomes onto HTTP statuses.
func writeIngestResult(w http.ResponseWriter, res IngestResult, err error) {
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBackpressure):
		w.Header().Set("Retry-After", strconv.Itoa(res.RetryAfterS))
		writeJSON(w, http.StatusTooManyRequests, res)
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrBatchTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, ErrNotRunning):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// handleStream drains length-prefixed binary frames from a long-lived
// request body, applying each as it arrives. The summary is written
// when the client closes its end (or on the first structural error);
// per-frame results are not echoed — the stream is fire-and-forget with
// the final tally reporting loss.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !isBinaryIngest(r) {
		writeError(w, http.StatusUnsupportedMediaType, fmt.Errorf("stream ingest requires Content-Type %s", wire.ContentType))
		return
	}
	res, err := s.IngestStream(r.Body)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadFrame):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrBatchTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err)
	case errors.Is(err, ErrNotRunning):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, io.ErrUnexpectedEOF):
		// The connection dropped mid-frame; complete frames are applied.
		writeError(w, http.StatusBadRequest, fmt.Errorf("stream truncated mid-frame after %d complete frames", res.Frames))
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// cursorParams parses ?since= and ?limit=.
func cursorParams(r *http.Request) (since uint64, limit int, err error) {
	q := r.URL.Query()
	if v := q.Get("since"); v != "" {
		since, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad since cursor %q", v)
		}
	}
	limit = 1000
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit <= 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
	}
	return since, limit, nil
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	since, limit, err := cursorParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items, next, first, truncated := s.alerts.since(since, limit)
	if items == nil {
		items = []Alert{}
	}
	writeJSON(w, http.StatusOK, alertsResponse{Alerts: items, Next: next, FirstSeq: first, Truncated: truncated})
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	since, limit, err := cursorParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items, next, first, truncated := s.audit.since(since, limit)
	if items == nil {
		items = []AuditEntry{}
	}
	writeJSON(w, http.StatusOK, auditResponse{Actions: items, Next: next, FirstSeq: first, Truncated: truncated})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	data, err := s.TenantModel(r.PathValue("id"))
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrNotRunning):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		// Typically: models not trained yet.
		writeError(w, http.StatusConflict, err)
	}
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		if errors.Is(err, ErrNotRunning) {
			writeError(w, http.StatusServiceUnavailable, err)
		} else {
			writeError(w, http.StatusConflict, err)
		}
		return
	}
	s.lastCkpt.Store(buf.Bytes())
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if err := s.Failure(); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("pipeline failed: %w", err))
		return
	}
	if !s.running() {
		writeError(w, http.StatusServiceUnavailable, ErrNotRunning)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
