package server

import (
	"fmt"

	"prepare/internal/telemetry"
)

// instruments bundles the server's pipeline telemetry. All fields are
// nil when telemetry is disabled; nil instruments no-op, following the
// control-loop convention, so the ingest hot path stays allocation-free
// without a registry.
type instruments struct {
	reg *telemetry.Registry

	batches         *telemetry.Counter
	samplesAccepted *telemetry.Counter
	samplesRejected *telemetry.Counter
	samplesApplied  *telemetry.Counter
	appendErrors    *telemetry.Counter
	ticks           *telemetry.Counter
	alertsPublished *telemetry.Counter
	stepsPublished  *telemetry.Counter
	checkpoints     *telemetry.Counter
	backpressure    *telemetry.Counter
	frames          *telemetry.Counter

	// queueDepth gauges track each shard's pending ingest batches.
	queueDepth []*telemetry.Gauge

	// Stage latencies (seconds): binary frame decode, time spent queued
	// before the shard worker picked a batch up, the append+watermark
	// apply pass, one whole-shard tick, and a publish pass.
	decodeLatency *telemetry.Histogram
	queueWait     *telemetry.Histogram
	applyLatency  *telemetry.Histogram
	tickLatency   *telemetry.Histogram

	// End-to-end latencies (seconds): ingest (batch enqueued → samples
	// applied), alert (triggering batch enqueued → alert published) and
	// actuation (triggering batch enqueued → audit entry published).
	ingestE2E    *telemetry.Histogram
	alertE2E     *telemetry.Histogram
	actuationE2E *telemetry.Histogram
}

func newInstruments(reg *telemetry.Registry, shards int) instruments {
	ins := instruments{
		reg:             reg,
		batches:         reg.Counter("server.ingest.batches"),
		samplesAccepted: reg.Counter("server.ingest.samples.accepted"),
		samplesRejected: reg.Counter("server.ingest.samples.rejected"),
		samplesApplied:  reg.Counter("server.ingest.samples.applied"),
		appendErrors:    reg.Counter("server.ingest.append_errors"),
		ticks:           reg.Counter("server.ticks"),
		alertsPublished: reg.Counter("server.alerts.published"),
		stepsPublished:  reg.Counter("server.steps.published"),
		checkpoints:     reg.Counter("server.checkpoints"),
		backpressure:    reg.Counter("server.ingest.backpressure"),
		frames:          reg.Counter("server.ingest.frames"),
		decodeLatency:   reg.HistogramWith("server.stage.decode", telemetry.LatencyBuckets),
		queueWait:       reg.HistogramWith("server.stage.queue_wait", telemetry.LatencyBuckets),
		applyLatency:    reg.HistogramWith("server.stage.apply", telemetry.LatencyBuckets),
		tickLatency:     reg.HistogramWith("server.stage.tick", telemetry.LatencyBuckets),
		ingestE2E:       reg.HistogramWith("server.ingest.e2e", telemetry.LatencyBuckets),
		alertE2E:        reg.HistogramWith("server.alert.e2e", telemetry.LatencyBuckets),
		actuationE2E:    reg.HistogramWith("server.actuation.e2e", telemetry.LatencyBuckets),
	}
	if reg != nil {
		ins.queueDepth = make([]*telemetry.Gauge, shards)
		for i := range ins.queueDepth {
			ins.queueDepth[i] = reg.Gauge(fmt.Sprintf("server.queue.depth.shard%d", i))
		}
	}
	return ins
}

// depth records the shard's current queue depth, nil-safe.
func (ins *instruments) depth(shard, depth int) {
	if ins.queueDepth == nil {
		return
	}
	ins.queueDepth[shard].Set(float64(depth))
}
