package bayes

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomInstances draws n instances over the given bin shape, with the
// requested abnormal fraction.
func randomInstances(rng *rand.Rand, bins []int, n int, abnormalFrac float64) []Instance {
	out := make([]Instance, n)
	for i := range out {
		b := make([]int, len(bins))
		for j := range b {
			b[j] = rng.Intn(bins[j])
		}
		out[i] = Instance{Bins: b, Abnormal: rng.Float64() < abnormalFrac}
	}
	return out
}

// TestTrainFromCountsMatchesBatchTrain is the foundational equivalence
// property: accumulating instances one Add at a time and rebuilding from
// the counts must produce bit-for-bit the model that batch Train fits
// from the same instances. Counts are integral floats (exact under 2^53)
// and the CMI/CPT formulas are shared, so exact equality is required,
// not approximate.
func TestTrainFromCountsMatchesBatchTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bins := []int{4, 3, 5, 2, 4}
	for trial := 0; trial < 20; trial++ {
		instances := randomInstances(rng, bins, 50+rng.Intn(400), 0.3)
		for _, naive := range []bool{false, true} {
			want, err := Train(instances, bins, Options{Naive: naive})
			if err != nil {
				t.Fatal(err)
			}
			ct, err := NewCountTable(bins)
			if err != nil {
				t.Fatal(err)
			}
			for _, inst := range instances {
				if err := ct.Add(inst.Bins, inst.Abnormal); err != nil {
					t.Fatal(err)
				}
			}
			got, err := TrainFromCounts(ct, Options{Naive: naive})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Snapshot(), want.Snapshot()) {
				t.Fatalf("trial %d (naive=%v): count-table model differs from batch model", trial, naive)
			}
		}
	}
}

// TestCountTableRelabelMatchesFinalLabels checks the streaming-relabel
// primitive: a table that took every instance with its provisional label
// and then Relabel-ed a subset must equal a table built directly from
// the final labels.
func TestCountTableRelabelMatchesFinalLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	bins := []int{3, 4, 2}
	for trial := 0; trial < 20; trial++ {
		instances := randomInstances(rng, bins, 200, 0.5)
		streamed, err := NewCountTable(bins)
		if err != nil {
			t.Fatal(err)
		}
		final := make([]bool, len(instances))
		for i, inst := range instances {
			final[i] = inst.Abnormal
			if err := streamed.Add(inst.Bins, inst.Abnormal); err != nil {
				t.Fatal(err)
			}
		}
		// Flip a random subset through Relabel, tracking the final class.
		for i, inst := range instances {
			if rng.Float64() < 0.25 {
				final[i] = !final[i]
				if err := streamed.Relabel(inst.Bins, final[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		direct, err := NewCountTable(bins)
		if err != nil {
			t.Fatal(err)
		}
		for i, inst := range instances {
			if err := direct.Add(inst.Bins, final[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(streamed.Snapshot(), direct.Snapshot()) {
			t.Fatalf("trial %d: relabeled table differs from directly-built table", trial)
		}
	}
}

// TestCountTableRemoveUndoesAdd: Add then Remove must restore the exact
// prior state, the property a sliding-window trainer would rely on.
func TestCountTableRemoveUndoesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bins := []int{4, 4, 4}
	ct, err := NewCountTable(bins)
	if err != nil {
		t.Fatal(err)
	}
	base := randomInstances(rng, bins, 50, 0.4)
	for _, inst := range base {
		if err := ct.Add(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
	}
	before := ct.Snapshot()
	extra := randomInstances(rng, bins, 30, 0.6)
	for _, inst := range extra {
		if err := ct.Add(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
	}
	for _, inst := range extra {
		if err := ct.Remove(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(ct.Snapshot(), before) {
		t.Fatal("Add+Remove did not restore the table")
	}
}

// TestFoldAbnormalMatchesRelabeledBatch: folding the abnormal class into
// normal must equal training on the same instances all labeled normal
// (the minimum-support rule's batch semantics).
func TestFoldAbnormalMatchesRelabeledBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bins := []int{3, 3, 3, 3}
	instances := randomInstances(rng, bins, 120, 0.04)
	ct, err := NewCountTable(bins)
	if err != nil {
		t.Fatal(err)
	}
	allNormal := make([]Instance, len(instances))
	for i, inst := range instances {
		if err := ct.Add(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
		allNormal[i] = Instance{Bins: inst.Bins, Abnormal: false}
	}
	folded := ct.FoldAbnormal()
	if folded.ClassCount(true) != 0 {
		t.Fatalf("folded table still has %v abnormal instances", folded.ClassCount(true))
	}
	got, err := TrainFromCounts(folded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Train(allNormal, bins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Snapshot(), want.Snapshot()) {
		t.Fatal("folded model differs from all-normal batch model")
	}
	// The original table must be untouched by the fold.
	if ct.ClassCount(true) == 0 {
		t.Fatal("FoldAbnormal mutated its receiver")
	}
}

// TestCountSnapshotRoundTrip: a table must survive Snapshot /
// CountTableFromSnapshot exactly, including further updates afterwards.
func TestCountSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bins := []int{5, 2, 3}
	ct, err := NewCountTable(bins)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range randomInstances(rng, bins, 80, 0.3) {
		if err := ct.Add(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
	}
	back, err := CountTableFromSnapshot(ct.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Snapshot(), ct.Snapshot()) {
		t.Fatal("snapshot round trip changed the table")
	}
	// Both copies must evolve identically.
	more := randomInstances(rng, bins, 20, 0.5)
	for _, inst := range more {
		if err := ct.Add(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
		if err := back.Add(inst.Bins, inst.Abnormal); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := TrainFromCounts(ct, Options{})
	b, _ := TrainFromCounts(back, Options{})
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored table diverged from the original")
	}
}

// TestCountTableValidation covers the error paths.
func TestCountTableValidation(t *testing.T) {
	if _, err := NewCountTable(nil); err == nil {
		t.Error("empty bins should fail")
	}
	if _, err := NewCountTable([]int{3, 0}); err == nil {
		t.Error("non-positive bin count should fail")
	}
	ct, err := NewCountTable([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Add([]int{1}, false); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := ct.Add([]int{1, 2}, false); err == nil {
		t.Error("out-of-range bin should fail")
	}
	if _, err := TrainFromCounts(ct, Options{}); err == nil {
		t.Error("training an empty table should fail")
	}
}
