package experiment

import (
	"testing"

	"prepare/internal/control"
	"prepare/internal/faults"
)

// TestLeakRateSensitivity explores the gradual-to-sudden spectrum the
// paper's discussion turns on: slower leaks give the predictor more lead
// time. For every rate, PREPARE must still beat doing nothing; and the
// slowest leak must be handled essentially perfectly.
func TestLeakRateSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	type point struct {
		rate     float64
		none     int64
		prepared int64
	}
	var points []point
	for _, rate := range []float64{0.8, 1.5, 3.0} {
		none, err := Run(Scenario{App: RUBiS, Fault: faults.MemoryLeak,
			Scheme: control.SchemeNone, Seed: 100, LeakRateMBps: rate})
		if err != nil {
			t.Fatal(err)
		}
		prep, err := Run(Scenario{App: RUBiS, Fault: faults.MemoryLeak,
			Scheme: control.SchemePREPARE, Seed: 100, LeakRateMBps: rate})
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, point{rate, none.EvalViolationSeconds, prep.EvalViolationSeconds})
		t.Logf("leak %.1f MB/s: none=%ds prepare=%ds", rate, none.EvalViolationSeconds, prep.EvalViolationSeconds)
	}
	for _, p := range points {
		if p.none < 30 {
			t.Errorf("rate %.1f: baseline violation %ds too small to evaluate", p.rate, p.none)
			continue
		}
		if float64(p.prepared) > 0.6*float64(p.none) {
			t.Errorf("rate %.1f: PREPARE %ds vs none %ds — insufficient prevention",
				p.rate, p.prepared, p.none)
		}
	}
}

// TestHogSizeSensitivity: larger hogs must still be contained by CPU
// scaling up to the point where the host capacity itself runs out.
func TestHogSizeSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, hog := range []float64{40, 90} {
		none, err := Run(Scenario{App: RUBiS, Fault: faults.CPUHog,
			Scheme: control.SchemeNone, Seed: 100, HogCPUPct: hog})
		if err != nil {
			t.Fatal(err)
		}
		prep, err := Run(Scenario{App: RUBiS, Fault: faults.CPUHog,
			Scheme: control.SchemePREPARE, Seed: 100, HogCPUPct: hog})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("hog %.0f%%: none=%ds prepare=%ds", hog, none.EvalViolationSeconds, prep.EvalViolationSeconds)
		// Marginal hogs (barely violating) are below the actionable
		// threshold; only sustained violations must be prevented.
		if none.EvalViolationSeconds > 60 &&
			float64(prep.EvalViolationSeconds) > 0.7*float64(none.EvalViolationSeconds) {
			t.Errorf("hog %.0f%%: PREPARE %ds vs none %ds", hog, prep.EvalViolationSeconds, none.EvalViolationSeconds)
		}
	}
}
