package prepare_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"prepare"
)

// TestServerMatchesLiveRun is the end-to-end service check: a live
// closed-loop simulation's dataset, replayed over the HTTP API into the
// controller service, must reproduce the live run's alert stream and
// actuation audit log byte-for-byte. This works because the service
// advances each tenant's substrate before the controller observes it,
// exactly as the live world does (see internal/server).
func TestServerMatchesLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario run outside -short")
	}
	res, err := prepare.Run(prepare.Scenario{
		App:    prepare.SystemS,
		Fault:  prepare.MemoryLeak,
		Scheme: prepare.SchemePREPARE,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alerts) == 0 || len(res.Steps) == 0 {
		t.Fatal("live run produced no alerts/steps; nothing to prove")
	}
	sc := res.Scenario // defaults filled in by Run

	srv, err := prepare.NewServer([]prepare.ServerTenant{{
		ID:  "app",
		VMs: res.VMOrder,
		Control: prepare.ControlConfig{
			SamplingIntervalS:    sc.SamplingIntervalS,
			LookaheadS:           sc.LookaheadS,
			FilterK:              sc.FilterK,
			FilterW:              sc.FilterW,
			TrainAtS:             sc.TrainAtS,
			RetrainIntervalS:     sc.RetrainIntervalS,
			RetrainMode:          sc.RetrainMode,
			Batch:                sc.Batch,
			Policy:               sc.Policy,
			Predict:              sc.Predict,
			MonitorSeed:          sc.Seed + 1000,
			DisableValidation:    sc.DisableValidation,
			Unsupervised:         sc.Unsupervised,
			HistoryWindowSamples: sc.HistoryWindowSamples,
		},
	}}, prepare.ServerConfig{QueueDepth: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Group the live dataset by sampling instant and POST it in order.
	instants := map[int64][]prepare.IngestSample{}
	for _, vm := range res.VMOrder {
		for _, sm := range res.Dataset[vm] {
			label := "normal"
			switch sm.Label {
			case prepare.LabelAbnormal:
				label = "abnormal"
			case prepare.LabelUnknown:
				label = "unknown"
			}
			instants[sm.Time.Seconds()] = append(instants[sm.Time.Seconds()], prepare.IngestSample{
				VM: string(vm), TimeS: sm.Time.Seconds(), Label: label, Values: sm.Values[:],
			})
		}
	}
	times := make([]int64, 0, len(instants))
	for tm := range instants {
		times = append(times, tm)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, tm := range times {
		body, err := json.Marshal(map[string][]prepare.IngestBatch{
			"batches": {{Tenant: "app", Samples: instants[tm]}},
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest at t=%d: status %d", tm, resp.StatusCode)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Failure(); err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}

	// Read the full alert stream back through the cursor API.
	var got []prepare.ServerAlert
	cursor := uint64(0)
	client := httptest.NewServer(srv.Handler()) // handler outlives Close
	defer client.Close()
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/alerts?since=%d&limit=500", client.URL, cursor))
		if err != nil {
			t.Fatal(err)
		}
		var page struct {
			Alerts    []prepare.ServerAlert `json:"alerts"`
			Next      uint64                `json:"next"`
			Truncated bool                  `json:"truncated"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if page.Truncated {
			t.Fatal("alert log truncated")
		}
		if len(page.Alerts) == 0 {
			break
		}
		got = append(got, page.Alerts...)
		cursor = page.Next
	}
	want := make([]prepare.ServerAlert, 0, len(res.Alerts))
	for i, a := range res.Alerts {
		want = append(want, prepare.ServerAlert{
			Seq: uint64(i + 1), Tenant: "app", Time: a.Time, VM: a.VM, Score: a.Score, Predicted: a.Predicted,
		})
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Errorf("HTTP-replayed alert stream differs from the live run:\n got %s\nwant %s", gb, wb)
	}

	gotAudit := srv.Audit(0, 0)
	if len(gotAudit) != len(res.Steps) {
		t.Fatalf("audit log has %d actions, live run executed %d", len(gotAudit), len(res.Steps))
	}
	for i, st := range res.Steps {
		g := gotAudit[i]
		if g.Time != st.Time || g.VM != st.VM || g.Kind != st.Kind || g.Resource != st.Resource || g.Detail != st.Detail {
			t.Errorf("audit[%d] = %+v, want %+v", i, g, st)
		}
	}
}
