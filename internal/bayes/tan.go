// Package bayes implements the Tree-Augmented Naive Bayesian network
// (TAN) classifier PREPARE uses for multi-variate anomaly classification
// and metric attribution, plus the plain naive Bayes classifier as the
// weaker baseline from the authors' earlier work.
//
// The TAN model (Cohen et al., OSDI'04; Friedman et al.) extends naive
// Bayes with a tree of dependencies among the attributes: each attribute
// has the class variable plus at most one other attribute as parents.
// The tree is the maximum spanning tree over pairwise conditional mutual
// information given the class (the Chow-Liu construction).
//
// Classification follows the paper's Equation (1): the state is abnormal
// when
//
//	sum_i log[P(a_i|a_pi, C=1)/P(a_i|a_pi, C=0)] + log[P(C=1)/P(C=0)] > 0
//
// and Equation (2) defines the per-attribute strength
// L_i = log[P(a_i|a_pi, C=1)/P(a_i|a_pi, C=0)], whose ranking drives
// PREPARE's anomaly cause inference (Figure 3).
package bayes

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// laplaceAlpha is the additive smoothing constant for all probability
// estimates.
const laplaceAlpha = 0.5

// Instance is one labeled training example: discretized attribute values
// plus the anomaly label.
type Instance struct {
	Bins     []int
	Abnormal bool
}

// Errors returned by training and classification.
var (
	ErrNoInstances = errors.New("bayes: no training instances")
	ErrShape       = errors.New("bayes: instance shape mismatch")
)

// Model is a trained TAN (or naive Bayes) classifier.
type Model struct {
	numAttrs int
	bins     []int // bins per attribute
	parent   []int // parent attribute index, -1 when class-only
	// cpt[i][c] is a [parentBins][attrBins] table of smoothed
	// conditional probabilities P(a_i = v | a_pi = u, C = c); parentBins
	// is 1 for root/naive attributes.
	cpt        [][2][][]float64
	classCount [2]float64
	total      float64
}

// Options controls training.
type Options struct {
	// Naive disables the dependency tree, producing a plain naive Bayes
	// classifier (every attribute's only parent is the class).
	Naive bool
}

// Train fits a TAN (or naive Bayes) model. bins gives the number of
// discretized states per attribute; every instance must have len(bins)
// values within range.
//
// Train is a thin wrapper over the sufficient-statistics path: it
// accumulates the instances into a CountTable and builds the model
// from the counts. Because all counts are exact integers, the result
// is bit-identical to the historical per-instance implementation —
// and to an incrementally maintained table fed the same instances.
func Train(instances []Instance, bins []int, opts Options) (*Model, error) {
	start := trainHook.Start()
	defer trainHook.Done(start)
	if len(instances) == 0 {
		return nil, ErrNoInstances
	}
	t, err := NewCountTable(bins)
	if err != nil {
		return nil, err
	}
	n := len(bins)
	for idx, inst := range instances {
		if len(inst.Bins) != n {
			return nil, fmt.Errorf("%w: instance %d has %d attrs, want %d", ErrShape, idx, len(inst.Bins), n)
		}
		for i, v := range inst.Bins {
			if v < 0 || v >= bins[i] {
				return nil, fmt.Errorf("%w: instance %d attr %d value %d not in [0,%d)",
					ErrShape, idx, i, v, bins[i])
			}
		}
		t.add(inst.Bins, inst.Abnormal, 1)
	}
	return trainFromCounts(t, opts)
}

func classIdx(abnormal bool) int {
	if abnormal {
		return 1
	}
	return 0
}

// buildTreeFrom computes the Chow-Liu maximum spanning tree over
// pairwise conditional mutual information (supplied by cmiAt, typically
// CountTable.cmi) and returns the parent array (root has parent -1).
func buildTreeFrom(n int, cmiAt func(i, j int) float64) []int {
	cmi := make([][]float64, n)
	for i := range cmi {
		cmi[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := cmiAt(i, j)
			cmi[i][j] = v
			cmi[j][i] = v
		}
	}
	// Prim's algorithm from attribute 0.
	parent := make([]int, n)
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = math.Inf(-1)
		bestFrom[i] = -1
		parent[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = cmi[0][j]
		bestFrom[j] = 0
	}
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick == -1 || best[j] > best[pick]) {
				pick = j
			}
		}
		if pick == -1 {
			break
		}
		inTree[pick] = true
		parent[pick] = bestFrom[pick]
		for j := 0; j < n; j++ {
			if !inTree[j] && cmi[pick][j] > best[j] {
				best[j] = cmi[pick][j]
				bestFrom[j] = pick
			}
		}
	}
	return parent
}

// cmiFromCounts estimates I(A_i; A_j | C) with Laplace smoothing from
// per-class joint and marginal count tables. joint[c] is indexed
// [vi*bj+vj].
func cmiFromCounts(bi, bj int, joint, margI, margJ [2][]float64, classN [2]float64) float64 {
	total := classN[0] + classN[1]
	info := 0.0
	for c := 0; c < 2; c++ {
		if classN[c] == 0 {
			continue
		}
		pc := classN[c] / total
		nc := classN[c]
		for vi := 0; vi < bi; vi++ {
			for vj := 0; vj < bj; vj++ {
				pxy := (joint[c][vi*bj+vj] + laplaceAlpha) / (nc + laplaceAlpha*float64(bi*bj))
				px := (margI[c][vi] + laplaceAlpha) / (nc + laplaceAlpha*float64(bi))
				py := (margJ[c][vj] + laplaceAlpha) / (nc + laplaceAlpha*float64(bj))
				if pxy > 0 {
					info += pc * pxy * math.Log(pxy/(px*py))
				}
			}
		}
	}
	return info
}

// allocCPTs sizes the conditional probability tables for the current
// parent array, zero-filled.
func (m *Model) allocCPTs() {
	m.cpt = make([][2][][]float64, m.numAttrs)
	for i := 0; i < m.numAttrs; i++ {
		pb := 1
		if m.parent[i] >= 0 {
			pb = m.bins[m.parent[i]]
		}
		for c := 0; c < 2; c++ {
			table := make([][]float64, pb)
			for u := range table {
				table[u] = make([]float64, m.bins[i])
			}
			m.cpt[i][c] = table
		}
	}
}

// normalizeCPTs converts raw counts into smoothed distributions: each
// (attr, class, parentValue) row becomes a distribution over attr
// values.
func (m *Model) normalizeCPTs() {
	for i := 0; i < m.numAttrs; i++ {
		for c := 0; c < 2; c++ {
			for u := range m.cpt[i][c] {
				row := m.cpt[i][c][u]
				total := 0.0
				for _, n := range row {
					total += n
				}
				denom := total + laplaceAlpha*float64(len(row))
				for v := range row {
					row[v] = (row[v] + laplaceAlpha) / denom
				}
			}
		}
	}
}

// NumAttributes returns the number of attributes the model was trained
// on.
func (m *Model) NumAttributes() int { return m.numAttrs }

// Parents returns a copy of the dependency-tree parent array (-1 marks
// attributes whose only parent is the class variable).
func (m *Model) Parents() []int {
	return append([]int(nil), m.parent...)
}

// ClassPrior returns the smoothed log prior ratio
// log P(C=1)/P(C=0).
func (m *Model) ClassPrior() float64 {
	p1 := (m.classCount[1] + laplaceAlpha) / (m.total + 2*laplaceAlpha)
	p0 := (m.classCount[0] + laplaceAlpha) / (m.total + 2*laplaceAlpha)
	return math.Log(p1 / p0)
}

// checkShape validates an observation vector.
func (m *Model) checkShape(bins []int) error {
	if len(bins) != m.numAttrs {
		return fmt.Errorf("%w: got %d attrs, want %d", ErrShape, len(bins), m.numAttrs)
	}
	for i, v := range bins {
		if v < 0 || v >= m.bins[i] {
			return fmt.Errorf("%w: attr %d value %d not in [0,%d)", ErrShape, i, v, m.bins[i])
		}
	}
	return nil
}

// strength returns L_i (Equation 2) for attribute i under the
// observation.
func (m *Model) strength(bins []int, i int) float64 {
	u := 0
	if p := m.parent[i]; p >= 0 {
		u = bins[p]
	}
	v := bins[i]
	return math.Log(m.cpt[i][1][u][v] / m.cpt[i][0][u][v])
}

// Score returns the left-hand side of Equation (1): positive scores
// classify as abnormal.
func (m *Model) Score(bins []int) (float64, error) {
	if err := m.checkShape(bins); err != nil {
		return 0, err
	}
	score := m.ClassPrior()
	for i := range bins {
		score += m.strength(bins, i)
	}
	return score, nil
}

// Classify reports whether the observation is classified abnormal.
func (m *Model) Classify(bins []int) (bool, error) {
	score, err := m.Score(bins)
	if err != nil {
		return false, err
	}
	return score > 0, nil
}

// Scratch holds reusable buffers for the scoring hot paths. A zero
// Scratch is ready to use; buffers grow on demand and are reused across
// calls, so one Scratch must not be shared between goroutines.
type Scratch struct {
	argmax    []int
	strengths []Strength
}

func (s *Scratch) argmaxBuf(n int) []int {
	if cap(s.argmax) < n {
		s.argmax = make([]int, n)
	}
	return s.argmax[:n]
}

func (s *Scratch) strengthsBuf(n int) []Strength {
	if cap(s.strengths) < n {
		s.strengths = make([]Strength, n)
	}
	return s.strengths[:n]
}

// ScoreMarginals evaluates Equation (1) in expectation over per-attribute
// predicted value distributions (as produced by the Markov value
// predictors): each attribute contributes E_v[L_i(v)] under its marginal,
// with the parent attribute fixed at its most likely predicted value.
// Compared to classifying the argmax values, the expected score shifts
// smoothly as probability mass drifts toward anomalous bins, which is
// what gives the anomaly predictor usable lead time. It returns the
// score and the per-attribute expected strengths sorted descending.
func (m *Model) ScoreMarginals(marginals [][]float64) (float64, []Strength, error) {
	return m.ScoreMarginalsScratch(marginals, nil)
}

// ScoreMarginalsScratch is ScoreMarginals reusing sc's buffers: the
// returned strengths alias sc and are valid only until the next call
// using the same Scratch. A nil sc allocates fresh slices, matching
// ScoreMarginals.
func (m *Model) ScoreMarginalsScratch(marginals [][]float64, sc *Scratch) (float64, []Strength, error) {
	start := scoreHook.Start()
	defer scoreHook.Done(start)
	argmax, err := m.checkMarginals(marginals, sc)
	if err != nil {
		return 0, nil, err
	}
	var strengths []Strength
	if sc != nil {
		strengths = sc.strengthsBuf(m.numAttrs)
	} else {
		strengths = make([]Strength, m.numAttrs)
	}
	score := m.ClassPrior()
	for i := 0; i < m.numAttrs; i++ {
		expL := m.expectedStrength(marginals, argmax, i)
		strengths[i] = Strength{Attribute: i, L: expL}
		score += expL
	}
	sort.SliceStable(strengths, func(a, b int) bool { return strengths[a].L > strengths[b].L })
	return score, strengths, nil
}

// MarginalScore computes just the Equation (1) expected score, skipping
// the strengths ranking — the cheap inner-loop variant PredictWindow
// uses to locate the worst step before materializing its full verdict.
func (m *Model) MarginalScore(marginals [][]float64, sc *Scratch) (float64, error) {
	start := scoreHook.Start()
	defer scoreHook.Done(start)
	argmax, err := m.checkMarginals(marginals, sc)
	if err != nil {
		return 0, err
	}
	score := m.ClassPrior()
	for i := 0; i < m.numAttrs; i++ {
		score += m.expectedStrength(marginals, argmax, i)
	}
	return score, nil
}

// checkMarginals validates the marginal shapes and returns each
// attribute's most likely predicted bin.
func (m *Model) checkMarginals(marginals [][]float64, sc *Scratch) ([]int, error) {
	if len(marginals) != m.numAttrs {
		return nil, fmt.Errorf("%w: got %d marginals, want %d", ErrShape, len(marginals), m.numAttrs)
	}
	var argmax []int
	if sc != nil {
		argmax = sc.argmaxBuf(m.numAttrs)
	} else {
		argmax = make([]int, m.numAttrs)
	}
	for i, dist := range marginals {
		if len(dist) != m.bins[i] {
			return nil, fmt.Errorf("%w: marginal %d has %d bins, want %d", ErrShape, i, len(dist), m.bins[i])
		}
		best, bestIdx := -1.0, 0
		for v, p := range dist {
			if p > best {
				best = p
				bestIdx = v
			}
		}
		argmax[i] = bestIdx
	}
	return argmax, nil
}

// expectedStrength is E_v[L_i(v)] under attribute i's marginal, with the
// parent fixed at its most likely predicted value.
func (m *Model) expectedStrength(marginals [][]float64, argmax []int, i int) float64 {
	u := 0
	if p := m.parent[i]; p >= 0 {
		u = argmax[p]
	}
	expL := 0.0
	for v, pv := range marginals[i] {
		if pv <= 0 {
			continue
		}
		expL += pv * math.Log(m.cpt[i][1][u][v]/m.cpt[i][0][u][v])
	}
	return expL
}

// Strength is one attribute's contribution to an abnormal classification.
type Strength struct {
	Attribute int
	L         float64
}

// AttributeStrengths returns L_i for every attribute under the
// observation, sorted descending — the paper's ranked list of metrics
// most related to the predicted anomaly.
func (m *Model) AttributeStrengths(bins []int) ([]Strength, error) {
	return m.AttributeStrengthsScratch(bins, nil)
}

// AttributeStrengthsScratch is AttributeStrengths reusing sc's buffers:
// the returned slice aliases sc and is valid only until the next call
// using the same Scratch. A nil sc allocates a fresh slice.
func (m *Model) AttributeStrengthsScratch(bins []int, sc *Scratch) ([]Strength, error) {
	if err := m.checkShape(bins); err != nil {
		return nil, err
	}
	var out []Strength
	if sc != nil {
		out = sc.strengthsBuf(m.numAttrs)
	} else {
		out = make([]Strength, m.numAttrs)
	}
	for i := 0; i < m.numAttrs; i++ {
		out[i] = Strength{Attribute: i, L: m.strength(bins, i)}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].L > out[b].L })
	return out, nil
}
