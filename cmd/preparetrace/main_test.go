package main

import "testing"

func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-kind", "nope"},
		{"-kind", "dataset", "-app", "nope"},
		{"-kind", "dataset", "-fault", "nope"},
		{"-kind", "dataset", "-split", "nope"},
		{"-kind", "dataset", "-vm", "ghost"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunWorkloadTrace(t *testing.T) {
	if err := run([]string{"-kind", "workload", "-horizon", "30"}); err != nil {
		t.Fatalf("workload trace: %v", err)
	}
}

func TestRunDatasetSplits(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, split := range []string{"train", "test", "all"} {
		if err := run([]string{"-kind", "dataset", "-app", "rubis",
			"-fault", "cpuhog", "-split", split, "-seed", "3"}); err != nil {
			t.Fatalf("dataset %s: %v", split, err)
		}
	}
}
