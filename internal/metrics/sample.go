package metrics

import (
	"fmt"

	"prepare/internal/simclock"
)

// Label classifies a sample according to the application's SLO state at
// the sample's timestamp. LabelUnknown is the zero value so unlabeled
// data is the natural default.
type Label int

const (
	// LabelUnknown marks samples that have not been correlated with the
	// SLO violation log yet.
	LabelUnknown Label = iota
	// LabelNormal marks samples taken while the SLO was satisfied.
	LabelNormal
	// LabelAbnormal marks samples taken while the SLO was violated.
	LabelAbnormal
)

// String returns a short human-readable label name.
func (l Label) String() string {
	switch l {
	case LabelNormal:
		return "normal"
	case LabelAbnormal:
		return "abnormal"
	case LabelUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// Vector holds one value per monitored attribute, indexed by
// Attribute.Index().
type Vector [NumAttributes]float64

// Get returns the value of the given attribute.
func (v Vector) Get(a Attribute) float64 { return v[a.Index()] }

// Set assigns the value of the given attribute.
func (v *Vector) Set(a Attribute, val float64) { v[a.Index()] = val }

// Sample is one monitoring observation of a single VM: a timestamped
// vector of the 13 attribute values plus an SLO-derived label.
type Sample struct {
	Time   simclock.Time
	Values Vector
	Label  Label
}

// Series is an append-only labeled time series of samples for one VM.
// The zero value is an empty series ready to use.
type Series struct {
	samples []Sample
}

// NewSeries returns an empty series with capacity for n samples.
func NewSeries(n int) *Series {
	return &Series{samples: make([]Sample, 0, n)}
}

// Append adds a sample to the end of the series. Samples are expected in
// non-decreasing time order; Append returns an error otherwise so callers
// catch wiring mistakes early.
func (s *Series) Append(sm Sample) error {
	if n := len(s.samples); n > 0 && sm.Time.Before(s.samples[n-1].Time) {
		return fmt.Errorf("metrics: sample at %v appended after %v", sm.Time, s.samples[n-1].Time)
	}
	s.samples = append(s.samples, sm)
	return nil
}

// Len returns the number of samples in the series.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample (0-based).
func (s *Series) At(i int) Sample { return s.samples[i] }

// Last returns the most recent sample. The boolean is false when the
// series is empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Recent returns up to the last n samples, oldest first. The returned
// slice is a copy so callers cannot mutate the series.
func (s *Series) Recent(n int) []Sample {
	if n > len(s.samples) {
		n = len(s.samples)
	}
	out := make([]Sample, n)
	copy(out, s.samples[len(s.samples)-n:])
	return out
}

// Window returns a copy of the samples with from <= t < to.
func (s *Series) Window(from, to simclock.Time) []Sample {
	var out []Sample
	for _, sm := range s.samples {
		if !sm.Time.Before(from) && sm.Time.Before(to) {
			out = append(out, sm)
		}
	}
	return out
}

// All returns a copy of every sample in the series, oldest first.
func (s *Series) All() []Sample {
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Column extracts the values of a single attribute across all samples.
func (s *Series) Column(a Attribute) []float64 {
	out := make([]float64, len(s.samples))
	for i, sm := range s.samples {
		out[i] = sm.Values.Get(a)
	}
	return out
}

// Relabel sets the label of every sample using the provided oracle, which
// maps a timestamp to the SLO state at that instant. This implements the
// paper's automatic runtime data labeling: measurements are matched
// against the SLO violation log by timestamp.
func (s *Series) Relabel(oracle func(simclock.Time) Label) {
	for i := range s.samples {
		s.samples[i].Label = oracle(s.samples[i].Time)
	}
}
