package predict

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"prepare/internal/detector"
	"prepare/internal/metrics"
	"prepare/internal/telemetry"
)

// DetectorOptions carries everything the model-backed detector
// adapters need from their host (the control loop or the offline
// scoring harness).
type DetectorOptions struct {
	// Names are the row column names.
	Names []string
	// Config configures the per-VM predictors (discretization, Markov
	// order, sampling interval).
	Config Config
	// Margin is the minimum TAN decision score for a raw predictive
	// alert (control.Config.AlertScoreMargin).
	Margin float64
	// LookbackSamples is the training relabel look-back
	// (lookaheadS / samplingIntervalS).
	LookbackSamples int
	// Incremental selects sufficient-statistics training for the TAN
	// detector, enabling O(1) Retrain.
	Incremental bool
	// Seed drives unsupervised detector initialization.
	Seed int64
	// Fleet, when non-nil, routes TAN window scoring through the
	// shared fleet batch scorer (the columnar hot path). Verdict must
	// directly follow the Score call it materializes, before any other
	// predictor scores through the same fleet.
	Fleet *Fleet
	// Instruments wires predictor telemetry (zero value disables).
	Instruments Instruments
	// Telemetry receives ensemble per-member counters (nil disables).
	Telemetry *telemetry.Registry
	// TelemetryScope scopes the ensemble counters (e.g. the VM ID).
	TelemetryScope string
}

// NewDetector builds an untrained detector for the spec. Model-backed
// kinds (tan, kmeans, zscore) adapt the predict package's supervised
// and unsupervised predictors; ewma/zrobust come from the detector
// package; ensembles compose any of them.
func NewDetector(spec detector.Spec, opts DetectorOptions) (detector.Detector, error) {
	if spec.IsZero() {
		spec = detector.Spec{Kind: detector.KindTAN}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dims := len(opts.Names)
	if dims == 0 {
		return nil, errors.New("predict: detector needs at least one column")
	}
	switch spec.Kind {
	case detector.KindTAN:
		return &tanDetector{opts: opts}, nil
	case detector.KindKMeans:
		return &unsupervisedDetector{kind: detector.KindKMeans, ukind: KMeansDetector, opts: opts}, nil
	case detector.KindZScore:
		return &unsupervisedDetector{kind: detector.KindZScore, ukind: ZScoreDetector, opts: opts}, nil
	case detector.KindEWMA:
		cfg := opts.Config.withDefaults()
		return detector.NewEWMA(dims, detector.EWMAOptions{SamplingIntervalS: cfg.SamplingIntervalS}), nil
	case detector.KindZRobust:
		return detector.NewZRobust(dims, detector.ZRobustOptions{}), nil
	case detector.KindEnsemble:
		members := make([]detector.Member, len(spec.Members))
		for i, kind := range spec.Members {
			memberOpts := opts
			// Ensemble members always score scalar: the fleet batch
			// scorer's Materialize window is owned by the pure-TAN path.
			memberOpts.Fleet = nil
			d, err := NewDetector(detector.Spec{Kind: kind}, memberOpts)
			if err != nil {
				return nil, err
			}
			members[i] = detector.Member{Detector: d}
		}
		ens, err := detector.NewEnsemble(members, float64(spec.Quorum))
		if err != nil {
			return nil, err
		}
		ens.SetTelemetry(opts.Telemetry, opts.TelemetryScope)
		return ens, nil
	default:
		return nil, fmt.Errorf("predict: unknown detector kind %q", spec.Kind)
	}
}

// LoadDetector restores a detector snapshot written by Detector.Save,
// dispatching on the kind recorded alongside the snapshot (the
// controller's model snapshots store kind + payload per VM).
func LoadDetector(kind string, r io.Reader, opts DetectorOptions) (detector.Detector, error) {
	switch kind {
	case detector.KindTAN:
		p, err := Load(r)
		if err != nil {
			return nil, err
		}
		p.SetInstruments(opts.Instruments)
		return &tanDetector{opts: opts, p: p}, nil
	case detector.KindKMeans, detector.KindZScore:
		up, err := LoadUnsupervised(r)
		if err != nil {
			return nil, err
		}
		up.SetInstruments(opts.Instruments)
		ukind := KMeansDetector
		if kind == detector.KindZScore {
			ukind = ZScoreDetector
		}
		return &unsupervisedDetector{kind: kind, ukind: ukind, opts: opts, up: up}, nil
	case detector.KindEWMA:
		return detector.LoadEWMA(r)
	case detector.KindZRobust:
		return detector.LoadZRobust(r)
	case detector.KindEnsemble:
		ens, err := detector.LoadEnsemble(r, func(mk string, data []byte) (detector.Detector, error) {
			switch mk {
			case detector.KindTAN, detector.KindKMeans, detector.KindZScore:
				memberOpts := opts
				memberOpts.Fleet = nil
				return LoadDetector(mk, bytes.NewReader(data), memberOpts)
			default:
				return nil, detector.ErrUnknownKind
			}
		})
		if err != nil {
			return nil, err
		}
		ens.SetTelemetry(opts.Telemetry, opts.TelemetryScope)
		return ens, nil
	default:
		return nil, fmt.Errorf("predict: unknown detector kind %q", kind)
	}
}

// InstalledTAN wraps a pre-trained supervised predictor in the TAN
// detector adapter (the InstallModels path).
func InstalledTAN(p *Predictor, opts DetectorOptions) detector.Detector {
	p.SetInstruments(opts.Instruments)
	return &tanDetector{opts: opts, p: p}
}

// TANPredictor unwraps the supervised predictor behind a detector, if
// it is the TAN adapter (comma-ok style).
func TANPredictor(d detector.Detector) (*Predictor, bool) {
	t, ok := d.(*tanDetector)
	if !ok || t.p == nil {
		return nil, false
	}
	return t.p, true
}

// tanDetector adapts the supervised Markov+TAN Predictor: Score is
// PredictWindow (or the fleet's batched equivalent) against the alert
// margin, Current is Evaluate, Update/Retrain route to the incremental
// sufficient-statistics machinery when enabled. Byte-identical to the
// control loop's former hard-wired supervised path.
type tanDetector struct {
	opts DetectorOptions
	p    *Predictor

	lastDec     detector.Decision
	lastVerdict Verdict // scalar-path verdict cached for Verdict()
	lastScalar  bool
	lastValid   bool
}

// Kind implements detector.Detector.
func (d *tanDetector) Kind() string { return detector.KindTAN }

// Train implements detector.Detector: a fresh predictor is fit exactly
// as the control loop's fitVM used to — incremental training when
// enabled, otherwise anomaly-onset relabeling plus a batch fit. rows
// and labels are mutated by relabeling, matching the legacy path.
func (d *tanDetector) Train(rows [][]float64, labels []metrics.Label) error {
	p, err := New(d.opts.Config, d.opts.Names)
	if err != nil {
		return err
	}
	p.SetInstruments(d.opts.Instruments)
	if d.opts.Incremental {
		if err := p.TrainIncremental(rows, labels, d.opts.LookbackSamples); err != nil {
			return err
		}
	} else {
		RelabelForTraining(rows, labels, d.opts.LookbackSamples)
		if err := p.Train(rows, labels); err != nil {
			return err
		}
	}
	d.p = p
	d.lastValid = false
	return nil
}

// Trained implements detector.Detector.
func (d *tanDetector) Trained() bool { return d.p != nil && d.p.Trained() }

// Update implements detector.Detector.
func (d *tanDetector) Update(row []float64, label metrics.Label) error {
	if d.p.Incremental() {
		return d.p.Update(row, label)
	}
	return d.p.Observe(row)
}

// Observe implements detector.Detector.
func (d *tanDetector) Observe(row []float64) error { return d.p.Observe(row) }

// Incremental implements detector.Detector.
func (d *tanDetector) Incremental() bool { return d.p != nil && d.p.Incremental() }

// Retrain implements detector.Detector.
func (d *tanDetector) Retrain() error {
	if d.p == nil {
		return ErrNotTrained
	}
	return d.p.Retrain()
}

// Score implements detector.Detector.
func (d *tanDetector) Score(lookaheadS int64) (detector.Decision, error) {
	if d.opts.Fleet != nil {
		dec, err := d.opts.Fleet.ScoreWindow(d.p, lookaheadS)
		if err != nil {
			return detector.Decision{}, err
		}
		d.lastDec = detector.Decision{
			Abnormal:  dec.Score > d.opts.Margin,
			Score:     dec.Score,
			LeadSteps: dec.BestStep + 1,
		}
		d.lastScalar = false
	} else {
		v, err := d.p.PredictWindow(lookaheadS)
		if err != nil {
			return detector.Decision{}, err
		}
		d.lastVerdict = v
		d.lastDec = detector.Decision{
			Abnormal:  v.Score > d.opts.Margin,
			Score:     v.Score,
			LeadSteps: d.p.lastBestStep + 1,
		}
		d.lastScalar = true
	}
	d.lastValid = true
	return d.lastDec, nil
}

// Verdict implements detector.Detector.
func (d *tanDetector) Verdict() (detector.Verdict, error) {
	if !d.lastValid {
		return detector.Verdict{}, errors.New("predict: tan verdict without a preceding score")
	}
	v := d.lastVerdict
	if !d.lastScalar {
		mv, err := d.opts.Fleet.Materialize(d.p)
		if err != nil {
			return detector.Verdict{}, err
		}
		v = mv
	}
	return supervisedVerdict(v, d.lastDec.Abnormal, d.lastDec.LeadSteps), nil
}

// Current implements detector.Detector: classify the sample as-is (the
// reactive path). Abnormal is the classifier's raw decision (score >
// 0), not the predictive margin, exactly as Evaluate reports it.
func (d *tanDetector) Current(row []float64) (detector.Verdict, error) {
	v, err := d.p.Evaluate(row)
	if err != nil {
		return detector.Verdict{}, err
	}
	return supervisedVerdict(v, v.Abnormal, 0), nil
}

// Save implements detector.Detector.
func (d *tanDetector) Save(w io.Writer) error {
	if d.p == nil {
		return ErrNotTrained
	}
	return d.p.Save(w)
}

// supervisedVerdict converts a predict.Verdict.
func supervisedVerdict(v Verdict, abnormal bool, lead int) detector.Verdict {
	out := detector.Verdict{Abnormal: abnormal, Score: v.Score, LeadSteps: lead}
	if len(v.Strengths) > 0 {
		out.Strengths = make([]detector.Strength, len(v.Strengths))
		for i, s := range v.Strengths {
			out.Strengths[i] = detector.Strength{Attribute: s.Attribute, L: s.L}
		}
	}
	return out
}

// unsupervisedDetector adapts the unsupervised predictor (Markov value
// prediction + clustering/z-score outlier detection, the paper's
// Section V extension) to the detector interface, reproducing the
// control loop's former stepUnsupervised semantics.
type unsupervisedDetector struct {
	kind  string
	ukind UnsupervisedKind
	opts  DetectorOptions
	up    *UnsupervisedPredictor

	lastScore float64
	lastValid bool
	lastAbn   bool
}

// Kind implements detector.Detector.
func (d *unsupervisedDetector) Kind() string { return d.kind }

// Train implements detector.Detector: labels are ignored — the
// detector learns the normal operating modes from the raw data.
func (d *unsupervisedDetector) Train(rows [][]float64, _ []metrics.Label) error {
	up, err := NewUnsupervised(d.opts.Config, d.opts.Names)
	if err != nil {
		return err
	}
	up.SetInstruments(d.opts.Instruments)
	if err := up.Train(rows, d.ukind, d.opts.Seed); err != nil {
		return err
	}
	d.up = up
	d.lastValid = false
	return nil
}

// Trained implements detector.Detector.
func (d *unsupervisedDetector) Trained() bool { return d.up != nil && d.up.Trained() }

// Update implements detector.Detector: unsupervised models have no
// labeled statistics, so Update and Observe both advance the chains.
func (d *unsupervisedDetector) Update(row []float64, _ metrics.Label) error {
	return d.up.Observe(row)
}

// Observe implements detector.Detector.
func (d *unsupervisedDetector) Observe(row []float64) error { return d.up.Observe(row) }

// Incremental implements detector.Detector.
func (d *unsupervisedDetector) Incremental() bool { return false }

// Retrain implements detector.Detector.
func (d *unsupervisedDetector) Retrain() error {
	return errors.New("predict: unsupervised detectors do not support incremental retrain")
}

// Score implements detector.Detector.
func (d *unsupervisedDetector) Score(lookaheadS int64) (detector.Decision, error) {
	v, err := d.up.PredictWindow(lookaheadS)
	if err != nil {
		return detector.Decision{}, err
	}
	d.lastScore, d.lastAbn, d.lastValid = v.Score, v.Abnormal, true
	return detector.Decision{Abnormal: v.Abnormal, Score: v.Score}, nil
}

// Verdict implements detector.Detector: attribution of the last
// streamed row (the row PredictWindow's current-state term scored),
// with Abnormal pinned true as the legacy confirmed-alert verdicts
// were.
func (d *unsupervisedDetector) Verdict() (detector.Verdict, error) {
	if !d.lastValid {
		return detector.Verdict{}, errors.New("predict: unsupervised verdict without a preceding score")
	}
	strengths, err := d.up.Attribution(d.up.lastRow)
	if err != nil {
		return detector.Verdict{}, err
	}
	out := detector.Verdict{Abnormal: true, Score: d.lastScore}
	out.Strengths = make([]detector.Strength, len(strengths))
	for i, s := range strengths {
		out.Strengths[i] = detector.Strength{Attribute: s.Attribute, L: s.L}
	}
	return out, nil
}

// Current implements detector.Detector: one-step prediction of the
// current state plus attribution of the sample itself.
func (d *unsupervisedDetector) Current(row []float64) (detector.Verdict, error) {
	v, err := d.up.Predict(1)
	if err != nil {
		return detector.Verdict{}, err
	}
	strengths, err := d.up.Attribution(row)
	if err != nil {
		return detector.Verdict{}, err
	}
	out := detector.Verdict{Abnormal: v.Abnormal, Score: v.Score}
	out.Strengths = make([]detector.Strength, len(strengths))
	for i, s := range strengths {
		out.Strengths[i] = detector.Strength{Attribute: s.Attribute, L: s.L}
	}
	return out, nil
}

// Save implements detector.Detector.
func (d *unsupervisedDetector) Save(w io.Writer) error {
	if d.up == nil {
		return ErrNotTrained
	}
	return d.up.Save(w)
}
