package monitor

import (
	"testing"
	"testing/quick"

	"prepare/internal/cloudsim"
	"prepare/internal/metrics"
	"prepare/internal/simclock"
)

func TestSLOLogOrdering(t *testing.T) {
	var l SLOLog
	if err := l.Record(10, false); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(5, true); err == nil {
		t.Error("out-of-order record should fail")
	}
	if err := l.Record(10, true); err != nil {
		t.Errorf("equal-time record should succeed: %v", err)
	}
}

func TestSLOLogViolatedAt(t *testing.T) {
	var l SLOLog
	for _, r := range []SLORecord{
		{Time: 0, Violated: false},
		{Time: 10, Violated: true},
		{Time: 20, Violated: false},
	} {
		if err := l.Record(r.Time, r.Violated); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		at   simclock.Time
		want bool
	}{
		{0, false}, {5, false}, {9, false},
		{10, true}, {15, true}, {19, true},
		{20, false}, {100, false},
	}
	for _, tt := range tests {
		if got := l.ViolatedAt(tt.at); got != tt.want {
			t.Errorf("ViolatedAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	// Before the first record: not violated.
	var l2 SLOLog
	if err := l2.Record(50, true); err != nil {
		t.Fatal(err)
	}
	if l2.ViolatedAt(10) {
		t.Error("time before first record should not be violated")
	}
}

func TestSLOLogLabel(t *testing.T) {
	var l SLOLog
	if got := l.Label(5); got != metrics.LabelUnknown {
		t.Errorf("empty log label = %v, want unknown", got)
	}
	if err := l.Record(0, false); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(10, true); err != nil {
		t.Fatal(err)
	}
	if got := l.Label(5); got != metrics.LabelNormal {
		t.Errorf("Label(5) = %v, want normal", got)
	}
	if got := l.Label(15); got != metrics.LabelAbnormal {
		t.Errorf("Label(15) = %v, want abnormal", got)
	}
}

func TestSLOLogViolationSeconds(t *testing.T) {
	var l SLOLog
	if err := l.Record(0, false); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(10, true); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(25, false); err != nil {
		t.Fatal(err)
	}
	if got := l.ViolationSeconds(0, 100); got != 15 {
		t.Errorf("ViolationSeconds = %d, want 15", got)
	}
	if got := l.ViolationSeconds(12, 20); got != 8 {
		t.Errorf("partial window = %d, want 8", got)
	}
}

func TestSLOLogViolationsIntervals(t *testing.T) {
	var l SLOLog
	states := []struct {
		t simclock.Time
		v bool
	}{{0, false}, {5, true}, {8, false}, {12, true}, {20, false}}
	for _, s := range states {
		if err := l.Record(s.t, s.v); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Violations(0, 30)
	want := [][2]simclock.Time{{5, 8}, {12, 20}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSLOLogOpenEndedViolation(t *testing.T) {
	var l SLOLog
	if err := l.Record(10, true); err != nil {
		t.Fatal(err)
	}
	got := l.Violations(0, 20)
	if len(got) != 1 || got[0] != [2]simclock.Time{10, 20} {
		t.Errorf("open-ended violation = %v", got)
	}
}

func TestPropertyViolationSecondsMatchesIntervals(t *testing.T) {
	f := func(flips []bool) bool {
		var l SLOLog
		for i, v := range flips {
			if err := l.Record(simclock.Time(i*3), v); err != nil {
				return false
			}
		}
		end := simclock.Time(len(flips)*3 + 5)
		total := l.ViolationSeconds(0, end)
		sum := int64(0)
		for _, iv := range l.Violations(0, end) {
			sum += iv[1].Sub(iv[0])
		}
		return total == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newMonitoredCluster(t *testing.T) (*cloudsim.Cluster, *cloudsim.VM) {
	t.Helper()
	c := cloudsim.NewCluster()
	if _, err := c.AddDefaultHost("h1"); err != nil {
		t.Fatal(err)
	}
	vm, err := c.PlaceVM("vm1", "h1", 100, 512)
	if err != nil {
		t.Fatal(err)
	}
	vm.CPUUsage = 50
	vm.CPUDemand = 55
	vm.WorkingSetMB = 300
	vm.NetInKBps = 800
	vm.NetOutKBps = 750
	vm.DiskReadKBps = 60
	vm.DiskWriteKBs = 30
	return c, vm
}

func TestNewSamplerValidation(t *testing.T) {
	c, _ := newMonitoredCluster(t)
	if _, err := NewSampler(nil, []cloudsim.VMID{"vm1"}, Config{}); err == nil {
		t.Error("nil cluster should fail")
	}
	if _, err := NewSampler(c, nil, Config{}); err == nil {
		t.Error("no VMs should fail")
	}
	if _, err := NewSampler(c, []cloudsim.VMID{"ghost"}, Config{}); err == nil {
		t.Error("unknown VM should fail")
	}
}

func TestCollectProducesAllAttributes(t *testing.T) {
	c, _ := newMonitoredCluster(t)
	s, err := NewSampler(c, []cloudsim.VMID{"vm1"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateLoad()
	samples, err := s.Collect(5, metrics.LabelNormal)
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := samples["vm1"]
	if !ok {
		t.Fatal("no sample for vm1")
	}
	if sm.Time != 5 || sm.Label != metrics.LabelNormal {
		t.Errorf("sample meta = %+v", sm)
	}
	// Core attributes reflect the VM state within noise.
	cpu := sm.Values.Get(metrics.CPUTotal)
	if cpu < 35 || cpu > 65 {
		t.Errorf("cpu_total = %.1f, want ~50", cpu)
	}
	free := sm.Values.Get(metrics.FreeMem)
	if free < 150 || free > 280 {
		t.Errorf("free_mem = %.1f, want ~212", free)
	}
	if sm.Values.Get(metrics.NetIn) <= 0 {
		t.Error("net_in should be positive")
	}
	if sm.Values.Get(metrics.Load1) <= 0 {
		t.Error("load1 should be positive after UpdateLoad")
	}
}

func TestCollectAppendsToSeries(t *testing.T) {
	c, _ := newMonitoredCluster(t)
	s, err := NewSampler(c, []cloudsim.VMID{"vm1"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if _, err := s.Collect(simclock.Time(i*5), metrics.LabelNormal); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := s.Series("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Len() != 5 {
		t.Errorf("series length = %d, want 5", sr.Len())
	}
	if _, err := s.Series("ghost"); err == nil {
		t.Error("unknown VM series should fail")
	}
}

func TestSamplerDeterministicForSeed(t *testing.T) {
	mk := func() metrics.Sample {
		c, _ := newMonitoredCluster(t)
		s, err := NewSampler(c, []cloudsim.VMID{"vm1"}, Config{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		samples, err := s.Collect(0, metrics.LabelNormal)
		if err != nil {
			t.Fatal(err)
		}
		return samples["vm1"]
	}
	a, b := mk(), mk()
	if a.Values != b.Values {
		t.Error("same seed should produce identical samples")
	}
}

func TestNoiseNeverNegative(t *testing.T) {
	c, vm := newMonitoredCluster(t)
	vm.NetInKBps = 0.001
	s, err := NewSampler(c, []cloudsim.VMID{"vm1"}, Config{Seed: 3, NoiseStd: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		samples, err := s.Collect(simclock.Time(i), metrics.LabelNormal)
		if err != nil {
			t.Fatal(err)
		}
		sm := samples["vm1"]
		for _, a := range metrics.AllAttributes() {
			if sm.Values.Get(a) < 0 {
				t.Fatalf("attribute %v negative at tick %d", a, i)
			}
		}
	}
}

func TestLoadEMAConverges(t *testing.T) {
	c, vm := newMonitoredCluster(t)
	vm.CPUDemand = 80 // utilization 0.8
	s, err := NewSampler(c, []cloudsim.VMID{"vm1"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.UpdateLoad()
	}
	samples, err := s.Collect(1000, metrics.LabelNormal)
	if err != nil {
		t.Fatal(err)
	}
	l1 := samples["vm1"].Values.Get(metrics.Load1)
	if l1 < 0.6 || l1 > 1.0 {
		t.Errorf("load1 = %.2f, want ~0.8", l1)
	}
}

func TestDataset(t *testing.T) {
	c, _ := newMonitoredCluster(t)
	s, err := NewSampler(c, []cloudsim.VMID{"vm1"}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Collect(0, metrics.LabelAbnormal); err != nil {
		t.Fatal(err)
	}
	ds := s.Dataset()
	if len(ds["vm1"]) != 1 || ds["vm1"][0].Label != metrics.LabelAbnormal {
		t.Errorf("dataset = %+v", ds)
	}
}
