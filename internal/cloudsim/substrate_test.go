package cloudsim

import (
	"errors"
	"testing"

	"prepare/internal/metrics"
	"prepare/internal/substrate"
)

func newTestWorld(t *testing.T) (*Cluster, *VM) {
	t.Helper()
	c := NewCluster()
	if _, err := c.AddDefaultHost("h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDefaultHost("h2"); err != nil {
		t.Fatal(err)
	}
	vm, err := c.PlaceVM("vm1", "h1", 100, 512)
	if err != nil {
		t.Fatal(err)
	}
	vm.CPUUsage = 50
	vm.CPUDemand = 55
	vm.WorkingSetMB = 300
	vm.NetInKBps = 800
	vm.NetOutKBps = 750
	vm.DiskReadKBps = 60
	vm.DiskWriteKBs = 30
	return c, vm
}

func TestNewSubstrateValidation(t *testing.T) {
	c, _ := newTestWorld(t)
	if _, err := NewSubstrate(nil, []VMID{"vm1"}); err == nil {
		t.Error("nil cluster should fail")
	}
	if _, err := NewSubstrate(c, nil); err == nil {
		t.Error("no VMs should fail")
	}
	if _, err := NewSubstrate(c, []VMID{"ghost"}); !errors.Is(err, ErrNoSuchVM) {
		t.Errorf("unknown VM error = %v, want ErrNoSuchVM", err)
	}
}

func TestSubstrateVMsSorted(t *testing.T) {
	c, _ := newTestWorld(t)
	if _, err := c.PlaceVM("vm0", "h2", 50, 256); err != nil {
		t.Fatal(err)
	}
	s, err := NewSubstrate(c, []VMID{"vm1", "vm0"})
	if err != nil {
		t.Fatal(err)
	}
	vms := s.VMs()
	if len(vms) != 2 || vms[0] != "vm0" || vms[1] != "vm1" {
		t.Errorf("VMs() = %v, want sorted [vm0 vm1]", vms)
	}
}

func TestSubstrateSampleDerivesAttributes(t *testing.T) {
	c, _ := newTestWorld(t)
	s, err := NewSubstrate(c, []VMID{"vm1"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Sample("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Get(metrics.CPUTotal); got != 50 {
		t.Errorf("cpu_total = %g, want 50", got)
	}
	if got := v.Get(metrics.CPUUser); got != 36 {
		t.Errorf("cpu_user = %g, want 36", got)
	}
	if got := v.Get(metrics.FreeMem); got != 212 {
		t.Errorf("free_mem = %g, want 212", got)
	}
	if got := v.Get(metrics.MemUsed); got != 300 {
		t.Errorf("mem_used = %g, want 300", got)
	}
	if got := v.Get(metrics.CtxSwitch); got != 400+35*50 {
		t.Errorf("ctx_switch = %g", got)
	}
	if _, err := s.Sample("ghost"); !errors.Is(err, ErrNoSuchVM) {
		t.Errorf("unknown VM sample error = %v", err)
	}
}

func TestSubstrateLoadEMAConverges(t *testing.T) {
	c, vm := newTestWorld(t)
	vm.CPUDemand = 80 // utilization 0.8
	s, err := NewSubstrate(c, []VMID{"vm1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Advance(0)
	}
	v, err := s.Sample("vm1")
	if err != nil {
		t.Fatal(err)
	}
	l1 := v.Get(metrics.Load1)
	if l1 < 0.75 || l1 > 0.85 {
		t.Errorf("load1 = %.2f, want ~0.8", l1)
	}
	l5 := v.Get(metrics.Load5)
	if l5 < 0.7 || l5 > 0.85 {
		t.Errorf("load5 = %.2f, want ~0.8", l5)
	}
}

func TestSubstrateInventoryAndActuation(t *testing.T) {
	c, _ := newTestWorld(t)
	s, err := NewSubstrate(c, []VMID{"vm1"})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := s.Allocation("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if alloc != (substrate.Allocation{CPUPct: 100, MemMB: 512}) {
		t.Errorf("allocation = %+v", alloc)
	}
	if err := s.ScaleCPU(5, "vm1", 150); err != nil {
		t.Fatal(err)
	}
	if err := s.ScaleMem(5, "vm1", 1024); err != nil {
		t.Fatal(err)
	}
	alloc, _ = s.Allocation("vm1")
	if alloc.CPUPct != 150 || alloc.MemMB != 1024 {
		t.Errorf("post-scale allocation = %+v", alloc)
	}
	if err := s.Migrate(6, "vm1", 150, 1024); err != nil {
		t.Fatal(err)
	}
	mig, err := s.Migrating("vm1")
	if err != nil {
		t.Fatal(err)
	}
	if !mig {
		t.Error("vm1 should be migrating")
	}
	if s.MigrationSeconds(512) != MigrationSeconds(512) {
		t.Error("MigrationSeconds must match the simulator's model")
	}
}
