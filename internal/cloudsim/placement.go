package cloudsim

import (
	"prepare/internal/placement"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
)

// MigrateTo starts a live migration of the VM to an explicit target
// host (substrate.TargetedActuator).
func (s *Substrate) MigrateTo(now simclock.Time, id VMID, target HostID, desiredCPUPct, desiredMemMB float64) error {
	return s.cluster.MigrateTo(now, id, target, desiredCPUPct, desiredMemMB)
}

var _ substrate.TargetedActuator = (*Substrate)(nil)

// PlacementInventory returns the indexed free-capacity mirror of the
// cluster, building it lazily on first call (a naive-placement run
// never pays for it). The mirror snapshots the current fleet —
// including in-flight migration reservations — and then stays current
// through cluster bookkeeping events; it shares no state with the
// simulator, so a mirror bug can never corrupt simulation results.
func (s *Substrate) PlacementInventory() *placement.Inventory {
	if s.placeInv != nil {
		return s.placeInv
	}
	inv := placement.NewInventory()
	for _, h := range s.cluster.Hosts() {
		err := inv.AddHost(placement.HostState{
			ID: h.ID, Domain: h.Domain, CPUCapPct: h.CPUCap, MemCapMB: h.MemCapMB,
		})
		if err != nil {
			inv.MarkDamaged(err)
		}
	}
	for _, vm := range s.cluster.VMs() {
		if err := inv.Place(vm.ID, vm.host.ID, vm.CPUAllocation, vm.MemAllocationMB, ""); err != nil {
			inv.MarkDamaged(err)
			continue
		}
		if vm.migrating && vm.migrateTarget != nil {
			if err := inv.Reserve(reservationKey(vm.ID), vm.migrateTarget.ID, vm.migrateCPU, vm.migrateMem); err != nil {
				inv.MarkDamaged(err)
			}
		}
	}
	s.cluster.SetListener(&invMirror{inv: inv})
	s.placeInv = inv
	return inv
}

func reservationKey(id VMID) string { return "mig:" + string(id) }

// invMirror forwards cluster bookkeeping events into the placement
// inventory. Any structural mismatch marks the inventory damaged (the
// engine then refuses decisions and the planner falls back to naive
// selection) rather than risking placements against a drifted view.
type invMirror struct {
	inv *placement.Inventory
}

func (m *invMirror) HostAdded(id HostID, domain string, cpuCap, memCapMB float64) {
	if err := m.inv.AddHost(placement.HostState{ID: id, Domain: domain, CPUCapPct: cpuCap, MemCapMB: memCapMB}); err != nil {
		m.inv.MarkDamaged(err)
	}
}

func (m *invMirror) VMPlaced(id VMID, host HostID, cpuPct, memMB float64) {
	if err := m.inv.Place(id, host, cpuPct, memMB, ""); err != nil {
		m.inv.MarkDamaged(err)
	}
}

func (m *invMirror) AllocChanged(id VMID, cpuPct, memMB float64) {
	if err := m.inv.SetAlloc(id, cpuPct, memMB); err != nil {
		m.inv.MarkDamaged(err)
	}
}

func (m *invMirror) MigrationStarted(id VMID, from, to HostID, resCPUPct, resMemMB float64) {
	if err := m.inv.Reserve(reservationKey(id), to, resCPUPct, resMemMB); err != nil {
		m.inv.MarkDamaged(err)
	}
}

func (m *invMirror) MigrationCompleted(id VMID, from, to HostID, cpuPct, memMB float64) {
	if err := m.inv.Release(reservationKey(id)); err != nil {
		m.inv.MarkDamaged(err)
		return
	}
	if err := m.inv.Move(id, to); err != nil {
		m.inv.MarkDamaged(err)
		return
	}
	if err := m.inv.SetAlloc(id, cpuPct, memMB); err != nil {
		m.inv.MarkDamaged(err)
	}
}
