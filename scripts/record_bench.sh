#!/usr/bin/env bash
# record_bench.sh N [extra go test args...]
#
# Runs the repo's performance benchmark suite and writes BENCH_PR<N>.json
# mapping each benchmark (GOMAXPROCS suffix stripped, averaged across
# -count repeats) to its ns/op, allocs/op and — where the benchmark
# reports one — vm-steps/sec, decisions/sec or samples/sec. The JSON is
# committed alongside the PR that changed the hot path so later sessions
# can diff fleet throughput without re-running the full sweep.
#
# Two passes keep wall-clock sane: the allocation micro-benchmarks run
# at a fixed iteration count for stable allocs/op, while the engine
# fleet benchmarks (whole-fleet ticks at 1k/10k/100k VMs, tens of
# seconds of setup each) run -benchtime 1x. Tune with:
#
#   BENCH_PATTERN          micro-bench regexp  (default: the CI gate set)
#   BENCH_COUNT            micro-bench -count  (default 3)
#   DETECTOR_BENCH_PATTERN detector regexp     (default DetectorFleetTick)
#   DETECTOR_BENCHTIME     detector -benchtime (default 5x; pass -short to
#                          skip the 10k-VM tier)
#   ENGINE_BENCH_PATTERN   engine regexp       (default EngineVMSteps, all fleets)
#   ENGINE_BENCHTIME       engine -benchtime   (default 1x)
#   PLACEMENT_BENCHTIME    placement -benchtime (default 500x)
#   WIRE_BENCH_PATTERN     wire regexp         (default IngestDecode|IngestEncode)
#   WIRE_BENCHTIME         wire -benchtime     (default 200x)
#   SKIP_ENGINE=1          skip the engine pass (quick micro-only record)
#   SKIP_LOADGEN=1         skip the loadgen transport pass (ingest profile
#                          over the JSON and binary wires; records
#                          end-to-end accepted samples/sec per transport)
#
# Usage:
#   ./scripts/record_bench.sh 6            # writes BENCH_PR6.json
#   SKIP_ENGINE=1 ./scripts/record_bench.sh 6 -short
set -euo pipefail

PR=${1:?usage: record_bench.sh <pr-number> [extra go test args...]}
shift || true
OUT="BENCH_PR${PR}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

MICRO_PATTERN=${BENCH_PATTERN:-'PredictSeries|PredictWindow|Scratch|MarginalScore|DisabledInstruments|DisabledChaos|RetrainIncremental|FleetScoreWindow'}
MICRO_PKGS=(./internal/markov ./internal/bayes ./internal/predict ./internal/telemetry ./internal/chaos)

echo ">> micro benchmarks (${MICRO_PATTERN})" >&2
go test -run '^$' -bench "$MICRO_PATTERN" -benchmem \
  -benchtime "${BENCH_TIME:-1000x}" -count "${BENCH_COUNT:-3}" \
  "$@" "${MICRO_PKGS[@]}" | tee -a "$RAW" >&2

echo ">> wire ingest benchmarks" >&2
go test -run '^$' -bench "${WIRE_BENCH_PATTERN:-IngestDecode|IngestEncode}" -benchmem \
  -benchtime "${WIRE_BENCHTIME:-200x}" -count "${BENCH_COUNT:-3}" \
  "$@" ./internal/wire | tee -a "$RAW" >&2

echo ">> placement decision benchmarks" >&2
go test -run '^$' -bench "${PLACEMENT_BENCH_PATTERN:-PlacementDecision}" -benchmem \
  -benchtime "${PLACEMENT_BENCHTIME:-500x}" -count "${BENCH_COUNT:-3}" \
  "$@" ./internal/placement | tee -a "$RAW" >&2

echo ">> detector fleet benchmarks" >&2
go test -run '^$' -bench "${DETECTOR_BENCH_PATTERN:-DetectorFleetTick}" -benchmem \
  -benchtime "${DETECTOR_BENCHTIME:-5x}" -timeout 60m \
  "$@" ./internal/predict | tee -a "$RAW" >&2

if [ "${SKIP_ENGINE:-0}" != "1" ]; then
  echo ">> engine fleet benchmarks (this is the slow part)" >&2
  go test -run '^$' -bench "${ENGINE_BENCH_PATTERN:-EngineVMSteps}" -benchmem \
    -benchtime "${ENGINE_BENCHTIME:-1x}" -timeout 60m \
    "$@" ./internal/control | tee -a "$RAW" >&2
fi

# End-to-end transport throughput: the ingest profile over the JSON
# and binary wires, recorded as loadgen/ingest/<wire> pseudo-benchmarks
# so the JSON carries the speedup the CI ratio gate enforces.
LG_JSON=""
LG_BINARY=""
if [ "${SKIP_LOADGEN:-0}" != "1" ]; then
  for w in json binary; do
    echo ">> loadgen ingest profile (-wire $w)" >&2
    sps=$(go run ./cmd/preparesim -loadgen -profile ingest -wire "$w" |
      awk '{ gsub(/[",]/, ""); if ($1 == "throughput_sps:") print $2 }')
    echo "   $sps samples/sec" >&2
    if [ "$w" = json ]; then LG_JSON="$sps"; else LG_BINARY="$sps"; fi
  done
fi

# Fold the raw `go test -bench` lines into {name: {metrics}} JSON.
# A bench line reads: BenchmarkX-8  <iters>  <v> ns/op [<v> vm-steps/sec]
# [<v> B/op  <v> allocs/op] — value/unit pairs starting at field 3.
awk -v lg_json="$LG_JSON" -v lg_binary="$LG_BINARY" '
  $1 ~ /^Benchmark/ && / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 3; i < NF; i++) {
      if ($(i + 1) == "ns/op")        { ns[name] += $i; nscnt[name]++ }
      if ($(i + 1) == "allocs/op")    { al[name] += $i; alcnt[name]++ }
      if ($(i + 1) == "vm-steps/sec") { vs[name] += $i; vscnt[name]++ }
      if ($(i + 1) == "decisions/sec") { ds[name] += $i; dscnt[name]++ }
      if ($(i + 1) == "samples/sec")   { ss[name] += $i; sscnt[name]++ }
    }
  }
  END {
    n = 0
    for (name in ns) names[n++] = name
    # insertion sort for stable, dependency-free key ordering
    for (i = 1; i < n; i++) {
      key = names[i]
      for (j = i - 1; j >= 0 && names[j] > key; j--) names[j + 1] = names[j]
      names[j + 1] = key
    }
    printf "{\n"
    for (i = 0; i < n; i++) {
      name = names[i]
      printf "  \"%s\": {\"ns_per_op\": %.1f", name, ns[name] / nscnt[name]
      if (alcnt[name]) printf ", \"allocs_per_op\": %.1f", al[name] / alcnt[name]
      if (vscnt[name]) printf ", \"vm_steps_per_sec\": %.1f", vs[name] / vscnt[name]
      if (dscnt[name]) printf ", \"decisions_per_sec\": %.1f", ds[name] / dscnt[name]
      if (sscnt[name]) printf ", \"samples_per_sec\": %.1f", ss[name] / sscnt[name]
      printf "}%s\n", (i < n - 1 || lg_json != "" || lg_binary != "") ? "," : ""
    }
    if (lg_json != "")
      printf "  \"loadgen/ingest/json\": {\"samples_per_sec\": %.1f}%s\n", lg_json, (lg_binary != "") ? "," : ""
    if (lg_binary != "")
      printf "  \"loadgen/ingest/binary\": {\"samples_per_sec\": %.1f}\n", lg_binary
    printf "}\n"
  }
' "$RAW" > "$OUT"

echo ">> wrote $OUT" >&2
cat "$OUT"
