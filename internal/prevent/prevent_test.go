package prevent

import (
	"errors"
	"testing"

	"prepare/internal/infer"
	"prepare/internal/metrics"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
)

// fakeSystem is a scriptable substrate.System: it records every
// actuation and can be told to fail scaling (host full) or migration
// (no eligible target), so planner fallback paths are exercised
// without a simulator.
type fakeSystem struct {
	allocs map[substrate.VMID]substrate.Allocation

	scaleErr   error // returned by ScaleCPU/ScaleMem when set
	migrateErr error // returned by Migrate when set

	calls     []string
	migrating map[substrate.VMID]bool
}

func newFakeSystem() *fakeSystem {
	return &fakeSystem{
		allocs:    map[substrate.VMID]substrate.Allocation{"vm1": {CPUPct: 100, MemMB: 512}},
		migrating: make(map[substrate.VMID]bool),
	}
}

func (f *fakeSystem) VMs() []substrate.VMID { return []substrate.VMID{"vm1"} }

func (f *fakeSystem) Allocation(id substrate.VMID) (substrate.Allocation, error) {
	a, ok := f.allocs[id]
	if !ok {
		return substrate.Allocation{}, substrate.ErrNoSuchVM
	}
	return a, nil
}

func (f *fakeSystem) Migrating(id substrate.VMID) (bool, error) {
	if _, ok := f.allocs[id]; !ok {
		return false, substrate.ErrNoSuchVM
	}
	return f.migrating[id], nil
}

func (f *fakeSystem) ScaleCPU(_ simclock.Time, id substrate.VMID, newCPUPct float64) error {
	f.calls = append(f.calls, "scale_cpu")
	if f.scaleErr != nil {
		return f.scaleErr
	}
	a := f.allocs[id]
	a.CPUPct = newCPUPct
	f.allocs[id] = a
	return nil
}

func (f *fakeSystem) ScaleMem(_ simclock.Time, id substrate.VMID, newMemMB float64) error {
	f.calls = append(f.calls, "scale_mem")
	if f.scaleErr != nil {
		return f.scaleErr
	}
	a := f.allocs[id]
	a.MemMB = newMemMB
	f.allocs[id] = a
	return nil
}

func (f *fakeSystem) Migrate(_ simclock.Time, id substrate.VMID, desiredCPUPct, desiredMemMB float64) error {
	f.calls = append(f.calls, "migrate")
	if f.migrateErr != nil {
		return f.migrateErr
	}
	f.allocs[id] = substrate.Allocation{CPUPct: desiredCPUPct, MemMB: desiredMemMB}
	f.migrating[id] = true
	return nil
}

func (f *fakeSystem) MigrationSeconds(float64) int64 { return 10 }

func memDiag(vm substrate.VMID) infer.Diagnosis {
	return infer.Diagnosis{VM: vm, Ranked: []metrics.Attribute{metrics.FreeMem, metrics.CPUTotal}}
}

func cpuDiag(vm substrate.VMID) infer.Diagnosis {
	return infer.Diagnosis{VM: vm, Ranked: []metrics.Attribute{metrics.CPUTotal, metrics.FreeMem}}
}

func TestNewPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil, ScalingFirst, Config{}); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := NewPlanner(newFakeSystem(), Policy(9), Config{}); err == nil {
		t.Error("bad policy should fail")
	}
	p, err := NewPlanner(newFakeSystem(), ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy() != ScalingFirst {
		t.Error("policy accessor wrong")
	}
}

func TestScalingFirstScalesTopResource(t *testing.T) {
	sys := newFakeSystem()
	p, err := NewPlanner(sys, ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := p.Prevent(10, memDiag("vm1"), 0)
	if err != nil {
		t.Fatalf("Prevent: %v", err)
	}
	if step.Kind != substrate.ActionScaleMem {
		t.Errorf("kind = %v, want scale_mem", step.Kind)
	}
	if got := sys.allocs["vm1"].MemMB; got != 512*1.75 {
		t.Errorf("mem alloc = %g, want 896", got)
	}
}

func TestScalingSecondAttemptUsesNextResource(t *testing.T) {
	p, err := NewPlanner(newFakeSystem(), ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := p.Prevent(10, memDiag("vm1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if step.Kind != substrate.ActionScaleCPU {
		t.Errorf("attempt 1 kind = %v, want scale_cpu", step.Kind)
	}
}

func TestExhaustedAttemptsStop(t *testing.T) {
	// The paper migrates only when scaling cannot be applied; once every
	// implicated resource has been scaled without effect, the planner
	// stops rather than disturb the VM with a migration.
	p, err := NewPlanner(newFakeSystem(), ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Prevent(10, memDiag("vm1"), 2); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhausted attempt error = %v, want ErrExhausted", err)
	}
}

func TestScalingFallsBackToMigrationWhenHostFull(t *testing.T) {
	sys := newFakeSystem()
	sys.scaleErr = substrate.ErrInsufficient // host cannot fit the scaled cap
	p, err := NewPlanner(sys, ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := p.Prevent(10, cpuDiag("vm1"), 0)
	if err != nil {
		t.Fatalf("Prevent: %v", err)
	}
	if step.Kind != substrate.ActionMigrate {
		t.Errorf("kind = %v, want migrate fallback", step.Kind)
	}
	if !sys.migrating["vm1"] {
		t.Error("vm should be migrating")
	}
	want := []string{"scale_cpu", "migrate"}
	if len(sys.calls) != 2 || sys.calls[0] != want[0] || sys.calls[1] != want[1] {
		t.Errorf("actuation order = %v, want %v", sys.calls, want)
	}
}

func TestMigrationFallbackRequestsGrownAllocation(t *testing.T) {
	// The fallback migration must carry the scaled-up (not current)
	// allocation so the target host reserves enough headroom.
	sys := newFakeSystem()
	sys.scaleErr = substrate.ErrInsufficient
	p, err := NewPlanner(sys, ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Prevent(10, cpuDiag("vm1"), 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.allocs["vm1"].CPUPct; got != 100*1.5 {
		t.Errorf("migrated CPU allocation = %g, want 150", got)
	}
	if got := sys.allocs["vm1"].MemMB; got != 512 {
		t.Errorf("migrated mem allocation = %g, want unchanged 512", got)
	}
}

func TestScalingErrorOtherThanInsufficientPropagates(t *testing.T) {
	// A permanent, unclassified scaling error passes through unchanged:
	// no migrate fallback, no retry. (Transient errors — ErrUnavailable,
	// ErrMigrating — are absorbed by the retry ladder instead; see
	// retry_test.go.)
	permanent := errors.New("hypervisor rejected the call")
	sys := newFakeSystem()
	sys.scaleErr = permanent
	p, err := NewPlanner(sys, ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Prevent(10, cpuDiag("vm1"), 0); !errors.Is(err, permanent) {
		t.Errorf("error = %v, want passthrough (no migrate fallback)", err)
	}
	if len(sys.calls) != 1 {
		t.Errorf("calls = %v, want only the failed scale", sys.calls)
	}
}

func TestMigrationOnlyPolicyMigratesDirectly(t *testing.T) {
	sys := newFakeSystem()
	p, err := NewPlanner(sys, MigrationOnly, Config{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := p.Prevent(10, memDiag("vm1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if step.Kind != substrate.ActionMigrate {
		t.Errorf("kind = %v, want migrate", step.Kind)
	}
	if len(sys.calls) != 1 || sys.calls[0] != "migrate" {
		t.Errorf("calls = %v, want direct migrate", sys.calls)
	}
}

func TestMigrationExhaustedWhenNoTarget(t *testing.T) {
	sys := newFakeSystem()
	sys.migrateErr = substrate.ErrNoEligibleTarget
	p, err := NewPlanner(sys, MigrationOnly, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Prevent(10, memDiag("vm1"), 0); !errors.Is(err, ErrExhausted) {
		t.Errorf("want ErrExhausted, got %v", err)
	}
}

func TestSaturatedAllocation(t *testing.T) {
	sys := newFakeSystem()
	sys.allocs["vm1"] = substrate.Allocation{CPUPct: 200, MemMB: 512}
	p, err := NewPlanner(sys, ScalingFirst, Config{MaxCPU: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Prevent(10, cpuDiag("vm1"), 0); !errors.Is(err, ErrSaturated) {
		t.Errorf("want ErrSaturated, got %v", err)
	}
}

func TestEmptyDiagnosisDefaultsToCPU(t *testing.T) {
	p, err := NewPlanner(newFakeSystem(), ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	step, err := p.Prevent(10, infer.Diagnosis{VM: "vm1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if step.Kind != substrate.ActionScaleCPU {
		t.Errorf("kind = %v, want scale_cpu default", step.Kind)
	}
}

func TestPreventUnknownVM(t *testing.T) {
	p, err := NewPlanner(newFakeSystem(), ScalingFirst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Prevent(0, memDiag("ghost"), 0); !errors.Is(err, substrate.ErrNoSuchVM) {
		t.Errorf("unknown VM error = %v, want ErrNoSuchVM", err)
	}
}

func mkSamples(times []int64, attr metrics.Attribute, values []float64) []metrics.Sample {
	out := make([]metrics.Sample, len(times))
	for i := range times {
		var v metrics.Vector
		v.Set(attr, values[i])
		out[i] = metrics.Sample{Time: simclock.Time(times[i]), Values: v}
	}
	return out
}

func TestValidateAlertsStoppedIsEffective(t *testing.T) {
	var v Validator
	got := v.Validate(nil, nil, metrics.FreeMem, true)
	if got != Effective {
		t.Errorf("validation = %v, want effective", got)
	}
}

func TestValidateUnchangedUsageIsIneffective(t *testing.T) {
	var v Validator
	before := mkSamples([]int64{0, 5, 10}, metrics.FreeMem, []float64{100, 101, 99})
	after := mkSamples([]int64{20, 25, 30}, metrics.FreeMem, []float64{100, 100, 101})
	got := v.Validate(before, after, metrics.FreeMem, false)
	if got != Ineffective {
		t.Errorf("validation = %v, want ineffective", got)
	}
}

func TestValidateChangedUsageIsInconclusive(t *testing.T) {
	var v Validator
	before := mkSamples([]int64{0, 5}, metrics.FreeMem, []float64{100, 100})
	after := mkSamples([]int64{20, 25}, metrics.FreeMem, []float64{400, 420})
	got := v.Validate(before, after, metrics.FreeMem, false)
	if got != Inconclusive {
		t.Errorf("validation = %v, want inconclusive", got)
	}
}

func TestValidateEmptyWindowsInconclusive(t *testing.T) {
	var v Validator
	if got := v.Validate(nil, nil, metrics.FreeMem, false); got != Inconclusive {
		t.Errorf("validation = %v, want inconclusive", got)
	}
}

func TestValidateCustomThreshold(t *testing.T) {
	// A ~15% drop is Inconclusive at the 10% default but Ineffective when
	// the planner demands a 25% swing; the fallthrough to the next ranked
	// metric keys off this verdict.
	before := mkSamples([]int64{0, 5}, metrics.CPUTotal, []float64{100, 100})
	after := mkSamples([]int64{20, 25}, metrics.CPUTotal, []float64{85, 85})
	if got := (Validator{}).Validate(before, after, metrics.CPUTotal, false); got != Inconclusive {
		t.Errorf("default threshold validation = %v, want inconclusive", got)
	}
	strict := Validator{MinRelChange: 0.25}
	if got := strict.Validate(before, after, metrics.CPUTotal, false); got != Ineffective {
		t.Errorf("strict threshold validation = %v, want ineffective", got)
	}
}

func TestValidationAndPolicyStrings(t *testing.T) {
	if Effective.String() != "effective" || Ineffective.String() != "ineffective" || Inconclusive.String() != "inconclusive" {
		t.Error("validation names wrong")
	}
	if ScalingFirst.String() != "scaling" || MigrationOnly.String() != "migration" {
		t.Error("policy names wrong")
	}
}
