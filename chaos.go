package prepare

import (
	"prepare/internal/chaos"
	"prepare/internal/substrate"
)

// Chaos substrate: a deterministic fault-injecting decorator around any
// Substrate. A seeded plan drops, delays, freezes, and corrupts metric
// samples, fails actuations transiently or permanently, and stalls
// migrations — reproducibly, so resilience runs are byte-identical for
// a given seed.
type (
	// ChaosPlan configures which faults fire and how often.
	ChaosPlan = chaos.Plan
	// ChaosSubstrate is the fault-injecting Substrate decorator.
	ChaosSubstrate = chaos.Substrate
	// ChaosEvent is one injected fault in the decorator's log.
	ChaosEvent = chaos.Event
	// ChaosFaultKind identifies an injected fault type.
	ChaosFaultKind = chaos.FaultKind
)

// ErrUnavailable reports a transient substrate failure: safe to retry
// after a backoff. The prevention planner absorbs a bounded number of
// these before escalating.
var ErrUnavailable = substrate.ErrUnavailable

// IsTransientSubstrateError reports whether err is worth retrying
// (ErrUnavailable or ErrMigrating) rather than escalating immediately.
func IsTransientSubstrateError(err error) bool { return substrate.IsTransient(err) }

// NewChaosSubstrate wraps inner with the plan's fault injection.
func NewChaosSubstrate(inner Substrate, plan ChaosPlan) (*ChaosSubstrate, error) {
	return chaos.New(inner, plan)
}

// UniformChaos builds a plan injecting every fault kind at the same
// per-call rate, keyed by seed.
func UniformChaos(seed int64, rate float64) ChaosPlan {
	return chaos.Uniform(seed, rate)
}
