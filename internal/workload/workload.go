// Package workload generates time-varying request/tuple rates for the
// simulated applications.
//
// The paper drives RUBiS with a client workload generator that emulates
// the intensity of the NASA web server trace (July 1 1995, IRCache
// archive). That trace is not available offline, so NASATrace synthesizes
// a request-rate process with the same qualitative structure: a diurnal
// sinusoidal baseline, short self-similar bursts, and multiplicative
// noise. System S experiments use a steady input rate with small jitter,
// and the bottleneck fault uses a linear ramp; both are provided here.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"prepare/internal/simclock"
)

// Generator yields the offered load (requests or tuples per second) at a
// simulated instant.
type Generator interface {
	// Rate returns the offered load at time t. Implementations must be
	// deterministic for a fixed seed and time.
	Rate(t simclock.Time) float64
}

// Constant is a fixed-rate generator.
type Constant struct {
	Value float64
}

var _ Generator = Constant{}

// Rate implements Generator.
func (c Constant) Rate(simclock.Time) float64 { return c.Value }

// NASATrace emulates the intensity pattern of the NASA web server trace:
// a diurnal cycle with bursty, noisy fluctuation around it. All
// randomness is pre-generated from the seed so Rate is a pure function of
// time.
type NASATrace struct {
	base      float64
	amplitude float64
	period    float64
	noise     []float64 // per-second multiplicative noise, pre-generated
	bursts    []burst
}

type burst struct {
	start, end simclock.Time
	factor     float64
}

var _ Generator = (*NASATrace)(nil)

// NASAConfig parameterizes the synthetic NASA-like trace.
type NASAConfig struct {
	// Base is the mean request rate (req/s).
	Base float64
	// Amplitude is the diurnal swing as a fraction of Base (0..1).
	Amplitude float64
	// PeriodSeconds is the diurnal period. The experiments compress a day
	// into a few hundred seconds, matching the paper's "realistic time
	// variations" at experiment scale.
	PeriodSeconds float64
	// Horizon is the number of seconds of noise to pre-generate.
	Horizon int
	// NoiseStd is the standard deviation of multiplicative noise.
	NoiseStd float64
	// BurstRate is the expected number of bursts per 100 seconds.
	BurstRate float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultNASAConfig returns the configuration used by the RUBiS
// experiments: ~80 req/s mean with a compressed diurnal cycle and
// occasional 1.15-1.35x bursts.
func DefaultNASAConfig(seed int64) NASAConfig {
	return NASAConfig{
		Base:          80,
		Amplitude:     0.25,
		PeriodSeconds: 487, // deliberately incommensurate with experiment phases
		Horizon:       4000,
		NoiseStd:      0.05,
		BurstRate:     1.2,
		Seed:          seed,
	}
}

// NewNASATrace builds the generator. It returns an error when the
// configuration is not physically meaningful.
func NewNASATrace(cfg NASAConfig) (*NASATrace, error) {
	if cfg.Base <= 0 {
		return nil, fmt.Errorf("workload: base rate %g must be positive", cfg.Base)
	}
	if cfg.Amplitude < 0 || cfg.Amplitude >= 1 {
		return nil, fmt.Errorf("workload: amplitude %g must be in [0,1)", cfg.Amplitude)
	}
	if cfg.PeriodSeconds <= 0 {
		return nil, fmt.Errorf("workload: period %g must be positive", cfg.PeriodSeconds)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon %d must be positive", cfg.Horizon)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	noise := make([]float64, cfg.Horizon)
	for i := range noise {
		noise[i] = 1 + rng.NormFloat64()*cfg.NoiseStd
		if noise[i] < 0.1 {
			noise[i] = 0.1
		}
	}
	var bursts []burst
	for t := 0; t < cfg.Horizon; t++ {
		if rng.Float64() < cfg.BurstRate/100 {
			dur := 5 + rng.Intn(20)
			bursts = append(bursts, burst{
				start:  simclock.Time(t),
				end:    simclock.Time(t + dur),
				factor: 1.15 + 0.2*rng.Float64(),
			})
		}
	}
	return &NASATrace{
		base:      cfg.Base,
		amplitude: cfg.Amplitude,
		period:    cfg.PeriodSeconds,
		noise:     noise,
		bursts:    bursts,
	}, nil
}

// Rate implements Generator.
func (g *NASATrace) Rate(t simclock.Time) float64 {
	sec := float64(t.Seconds())
	diurnal := 1 + g.amplitude*math.Sin(2*math.Pi*sec/g.period)
	rate := g.base * diurnal
	idx := int(t.Seconds())
	if idx >= 0 && idx < len(g.noise) {
		rate *= g.noise[idx]
	}
	for _, b := range g.bursts {
		if !t.Before(b.start) && t.Before(b.end) {
			rate *= b.factor
		}
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}

// Ramp linearly increases the rate from Start to Peak between RampFrom
// and RampTo, holding constant outside that interval. It models the
// paper's bottleneck fault: "we gradually increase the workload until
// hitting the capacity limit of the bottleneck component".
type Ramp struct {
	Start    float64
	Peak     float64
	RampFrom simclock.Time
	RampTo   simclock.Time
}

var _ Generator = Ramp{}

// Rate implements Generator.
func (r Ramp) Rate(t simclock.Time) float64 {
	switch {
	case t.Before(r.RampFrom):
		return r.Start
	case !t.Before(r.RampTo):
		return r.Peak
	default:
		total := r.RampTo.Sub(r.RampFrom)
		if total <= 0 {
			return r.Peak
		}
		frac := float64(t.Sub(r.RampFrom)) / float64(total)
		return r.Start + (r.Peak-r.Start)*frac
	}
}

// Jittered wraps a Generator with multiplicative Gaussian noise,
// pre-generated so the result stays a pure function of time.
type Jittered struct {
	inner Generator
	noise []float64
}

var _ Generator = (*Jittered)(nil)

// NewJittered pre-generates horizon seconds of noise with the given
// standard deviation around 1.0.
func NewJittered(inner Generator, std float64, horizon int, seed int64) (*Jittered, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon %d must be positive", horizon)
	}
	if std < 0 {
		return nil, fmt.Errorf("workload: noise std %g must be non-negative", std)
	}
	rng := rand.New(rand.NewSource(seed))
	noise := make([]float64, horizon)
	for i := range noise {
		noise[i] = 1 + rng.NormFloat64()*std
		if noise[i] < 0 {
			noise[i] = 0
		}
	}
	return &Jittered{inner: inner, noise: noise}, nil
}

// Rate implements Generator.
func (g *Jittered) Rate(t simclock.Time) float64 {
	r := g.inner.Rate(t)
	idx := int(t.Seconds())
	if idx >= 0 && idx < len(g.noise) {
		r *= g.noise[idx]
	}
	if r < 0 {
		r = 0
	}
	return r
}

// Scaled multiplies another generator's rate by a constant factor.
type Scaled struct {
	Inner  Generator
	Factor float64
}

var _ Generator = Scaled{}

// Rate implements Generator.
func (s Scaled) Rate(t simclock.Time) float64 { return s.Inner.Rate(t) * s.Factor }
