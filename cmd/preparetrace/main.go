// Command preparetrace generates deterministic traces for offline use:
// workload rate traces (the synthetic NASA-like process) and labeled
// per-VM metrics datasets collected from a fault-injection run.
//
// Usage:
//
//	preparetrace -kind workload -horizon 1200 -seed 7 > rates.csv
//	preparetrace -kind dataset -app rubis -fault memleak -vm vm-db \
//	    -split train > train.csv
//	preparetrace -kind dataset -app rubis -fault memleak -vm vm-db \
//	    -split test > test.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"prepare"
	"prepare/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "preparetrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("preparetrace", flag.ContinueOnError)
	kind := fs.String("kind", "workload", "trace kind: workload or dataset")
	horizon := fs.Int64("horizon", 1200, "workload trace length in seconds")
	seed := fs.Int64("seed", 7, "random seed")
	app := fs.String("app", "rubis", "application for -kind dataset: systems or rubis")
	fault := fs.String("fault", "memleak", "fault for -kind dataset")
	vm := fs.String("vm", "", "VM to export (default: the fault target)")
	split := fs.String("split", "all", "dataset portion: train, test or all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *kind {
	case "workload":
		cfg := workload.DefaultNASAConfig(*seed)
		cfg.Horizon = int(*horizon) + 1
		gen, err := workload.NewNASATrace(cfg)
		if err != nil {
			return err
		}
		return workload.WriteCSV(os.Stdout, workload.Sample(gen, *horizon))
	case "dataset":
		return writeDataset(*app, *fault, *vm, *split, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
}

func writeDataset(appName, faultName, vmName, split string, seed int64) error {
	var app prepare.AppKind
	switch appName {
	case "systems":
		app = prepare.SystemS
	case "rubis":
		app = prepare.RUBiS
	default:
		return fmt.Errorf("unknown app %q", appName)
	}
	var fault prepare.FaultKind
	switch faultName {
	case "memleak":
		fault = prepare.MemoryLeak
	case "cpuhog":
		fault = prepare.CPUHog
	case "bottleneck":
		fault = prepare.Bottleneck
	default:
		return fmt.Errorf("unknown fault %q", faultName)
	}

	ds, err := prepare.CollectDataset(prepare.Scenario{App: app, Fault: fault, Seed: seed})
	if err != nil {
		return err
	}
	target := prepare.VMID(vmName)
	if vmName == "" {
		target = ds.FaultTarget
		if target == "" && len(ds.Order) > 0 {
			target = ds.Order[0]
		}
	}
	samples, ok := ds.PerVM[target]
	if !ok {
		return fmt.Errorf("no samples for VM %q (have %v)", target, ds.Order)
	}
	var out []prepare.Sample
	for _, sm := range samples {
		inTrain := sm.Time.Seconds() < ds.TrainAtS
		switch split {
		case "train":
			if inTrain {
				out = append(out, sm)
			}
		case "test":
			if !inTrain {
				out = append(out, sm)
			}
		case "all":
			out = append(out, sm)
		default:
			return fmt.Errorf("unknown split %q", split)
		}
	}
	return prepare.WriteSamplesCSV(os.Stdout, out)
}
