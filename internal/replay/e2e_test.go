package replay_test

import (
	"testing"

	"prepare/internal/control"
	"prepare/internal/metrics"
	"prepare/internal/replay"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
)

// TestFullLoopOverReplayedTrace drives the complete PREPARE loop —
// monitor, predict, filter, diagnose, prevent, validate — from offline
// data only: a labeled trace with two identical anomaly episodes. The
// models train after the first episode and must predict the second,
// producing prevention actions in the replay substrate's log. No
// simulator is involved anywhere.
func TestFullLoopOverReplayedTrace(t *testing.T) {
	const (
		durationS = 1500
		trainAtS  = 600
	)
	episodes := [][2]int64{{200, 500}, {900, 1200}}
	sub, err := replay.New(map[substrate.VMID][]metrics.Sample{
		"vm1": replay.SyntheticTrace(1, durationS, episodes),
	}, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := replay.NewApp(sub)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := control.New(control.SchemePREPARE, sub, app, control.Config{
		TrainAtS:        trainAtS,
		MonitorNoiseStd: -1, // the trace already carries noise
		MonitorSeed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := int64(1); s <= durationS; s++ {
		if err := ctl.OnTick(simclock.Time(s)); err != nil {
			t.Fatalf("tick %d: %v", s, err)
		}
	}

	if !ctl.Trained() {
		t.Fatal("models never trained from the replayed labels")
	}
	alerts := ctl.Alerts()
	if len(alerts) == 0 {
		t.Fatal("no alerts on the second episode of a learned anomaly")
	}
	for _, a := range alerts {
		if !a.Predicted {
			t.Error("replay PREPARE alerts must be predictive")
		}
		// Allow a short tail past the episode end: the k-of-W filter
		// confirms a few samples after the last abnormal one.
		if sec := a.Time.Seconds(); sec < trainAtS || sec > episodes[1][1]+30 {
			t.Errorf("alert at %d outside the post-training prediction window", sec)
		}
	}
	acts := sub.Actions()
	if len(acts) == 0 {
		t.Fatal("no prevention actions recorded in the replay log")
	}
	if acts[0].VM != "vm1" {
		t.Errorf("action targeted %q, want vm1", acts[0].VM)
	}
	if len(ctl.Steps()) != len(acts) {
		t.Errorf("controller recorded %d steps but substrate logged %d actions",
			len(ctl.Steps()), len(acts))
	}
	// The SLO log reconstructed from trace labels must match the
	// episodes' abnormal windows (abnormal from 25% episode progress).
	log := ctl.SLOLog()
	if log.ViolationSeconds(0, durationS) == 0 {
		t.Error("replayed SLO log recorded no violations")
	}
	if log.ViolationSeconds(600, 900) != 0 {
		t.Error("violation recorded in the quiet window between episodes")
	}
}

// TestReplayRunsAreDeterministic: two identical replay runs must agree
// byte-for-byte on alerts and actions.
func TestReplayRunsAreDeterministic(t *testing.T) {
	run := func() ([]control.AlertEvent, []replay.Action) {
		sub, err := replay.New(map[substrate.VMID][]metrics.Sample{
			"vm1": replay.SyntheticTrace(7, 1500, [][2]int64{{200, 500}, {900, 1200}}),
		}, replay.Config{})
		if err != nil {
			t.Fatal(err)
		}
		app, err := replay.NewApp(sub)
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := control.New(control.SchemePREPARE, sub, app, control.Config{
			TrainAtS:        600,
			MonitorNoiseStd: -1,
			MonitorSeed:     5,
		})
		if err != nil {
			t.Fatal(err)
		}
		for s := int64(1); s <= 1500; s++ {
			if err := ctl.OnTick(simclock.Time(s)); err != nil {
				t.Fatal(err)
			}
		}
		return ctl.Alerts(), sub.Actions()
	}
	a1, s1 := run()
	a2, s2 := run()
	if len(a1) != len(a2) {
		t.Fatalf("alert counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("alert %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	if len(s1) != len(s2) {
		t.Fatalf("action counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("action %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}
