package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prepare/internal/metrics"
	"prepare/internal/substrate"
	"prepare/internal/telemetry"
)

// newAPIServer builds a small running server plus an httptest frontend.
func newAPIServer(t *testing.T, cfg Config) (*Server, *httptest.Server, map[substrate.VMID][]metrics.Sample) {
	t.Helper()
	traces := tenantTraces("api", 2, 11)
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New(telemetry.Options{})
	}
	srv, err := New([]TenantConfig{{
		ID:      "api",
		VMs:     sortedVMs(traces),
		Control: testControlConfig(11, testTrainAt),
	}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, traces
}

func ingestBody(tenant string, samples ...SampleIn) string {
	b, _ := json.Marshal(ingestRequest{Batches: []Batch{{Tenant: tenant, Samples: samples}}})
	return string(b)
}

func validSample(vm substrate.VMID, timeS int64) SampleIn {
	vals := make([]float64, metrics.NumAttributes)
	for i := range vals {
		vals[i] = float64(i)
	}
	return SampleIn{VM: string(vm), TimeS: timeS, Label: "normal", Values: vals}
}

func TestIngestHandlerValidation(t *testing.T) {
	_, ts, traces := newAPIServer(t, Config{})
	vms := sortedVMs(traces)
	ok := validSample(vms[0], 0)

	short := ok
	short.Values = ok.Values[:3]
	badLabel := ok
	badLabel.Label = "on-fire"
	negative := ok
	negative.TimeS = -4

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"valid", ingestBody("api", ok), http.StatusOK},
		{"malformed JSON", `{"batches": [`, http.StatusBadRequest},
		{"unknown field", `{"batches": [], "extra": 1}`, http.StatusBadRequest},
		{"no batches", `{"batches": []}`, http.StatusBadRequest},
		{"empty batch", `{"batches": [{"tenant": "api", "samples": []}]}`, http.StatusBadRequest},
		{"unknown tenant", ingestBody("ghost", ok), http.StatusNotFound},
		{"unknown VM", ingestBody("api", SampleIn{VM: "api-vm99", TimeS: 5, Values: ok.Values}), http.StatusBadRequest},
		{"short vector", ingestBody("api", short), http.StatusBadRequest},
		{"bad label", ingestBody("api", badLabel), http.StatusBadRequest},
		{"negative time", ingestBody("api", negative), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
		})
	}
}

func TestIngestHandlerOversizedBatch(t *testing.T) {
	_, ts, traces := newAPIServer(t, Config{MaxBatchSamples: 8})
	vms := sortedVMs(traces)
	var samples []SampleIn
	for i := int64(0); i < 9; i++ {
		samples = append(samples, validSample(vms[0], i*5))
	}
	resp, err := http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader(ingestBody("api", samples...)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestIngestHandlerBackpressure pauses the shard worker behind a
// barrier, fills the bounded queue, and checks that the next request is
// rejected with 429 + Retry-After instead of buffering.
func TestIngestHandlerBackpressure(t *testing.T) {
	srv, ts, traces := newAPIServer(t, Config{QueueDepth: 4, RetryAfterS: 3})
	vms := sortedVMs(traces)

	ack := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv.shards[0].queue <- item{kind: itemBarrier, ack: ack, gate: gate}
	<-ack // worker parked; nothing drains until the gate opens

	for i := int64(0); i < 4; i++ {
		res, err := srv.Ingest([]Batch{{Tenant: "api", Samples: []SampleIn{validSample(vms[0], i*5)}}})
		if err != nil {
			t.Fatalf("fill %d: %v (%+v)", i, err, res)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/samples", "application/json",
		strings.NewReader(ingestBody("api", validSample(vms[0], 100))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || res.Accepted != 0 {
		t.Errorf("result = %+v, want 1 rejected", res)
	}
	close(gate)

	st := srv.Stats()
	if st.SamplesRejected == 0 || st.BatchesRejected == 0 {
		t.Errorf("backpressure not counted: %+v", st)
	}
}

func TestCursorEndpoints(t *testing.T) {
	_, ts, _ := newAPIServer(t, Config{})
	for _, path := range []string{"/v1/alerts", "/v1/audit"} {
		resp, err := http.Get(ts.URL + path + "?since=nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s bad since: status = %d, want 400", path, resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + path + "?limit=-2")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s bad limit: status = %d, want 400", path, resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Alerts  []Alert      `json:"alerts"`
			Actions []AuditEntry `json:"actions"`
			Next    uint64       `json:"next"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Next != 0 {
			t.Errorf("%s empty read: status=%d next=%d", path, resp.StatusCode, out.Next)
		}
	}
}

// TestAlertsCursorPagination drives a tenant far enough to alert, then
// walks the stream with small pages and checks the cursors compose.
func TestAlertsCursorPagination(t *testing.T) {
	if testing.Short() {
		t.Skip("full-horizon run outside -short")
	}
	srv, ts, traces := newAPIServer(t, Config{})
	feed(t, srv, map[string]map[substrate.VMID][]metrics.Sample{"api": traces}, 0, testHorizon)

	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().AlertsPublished == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no alerts published")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Quiesce so the paged walk sees a stable stream.
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.SamplesApplied+st.AppendErrors >= st.SamplesAccepted && allZero(st.QueueDepths) {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("pipeline did not drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // publisher drain

	var all []Alert
	cursor := uint64(0)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/alerts?since=%d&limit=2", ts.URL, cursor))
		if err != nil {
			t.Fatal(err)
		}
		var page alertsResponse
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if page.Truncated {
			t.Fatal("unexpected truncation")
		}
		if len(page.Alerts) == 0 {
			break
		}
		if len(page.Alerts) > 2 {
			t.Fatalf("page of %d exceeds limit 2", len(page.Alerts))
		}
		all = append(all, page.Alerts...)
		cursor = page.Next
	}
	direct := drainAlerts(srv)
	if len(all) != len(direct) {
		t.Fatalf("paged walk returned %d alerts, log holds %d", len(all), len(direct))
	}
	for i := range all {
		if all[i] != direct[i] {
			t.Fatalf("page item %d = %+v, want %+v", i, all[i], direct[i])
		}
	}
}

func allZero(depths []int) bool {
	for _, d := range depths {
		if d != 0 {
			return false
		}
	}
	return true
}

func TestHealthAndReadiness(t *testing.T) {
	srv, ts, _ := newAPIServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed /readyz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/samples", "application/json",
		strings.NewReader(`{"batches":[{"tenant":"api","samples":[]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("closed ingest of bad batch = %d, want 400 (validation first)", resp.StatusCode)
	}
}

func TestModelAndCheckpointEndpoints(t *testing.T) {
	_, ts, _ := newAPIServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/tenants/ghost/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant model = %d, want 404", resp.StatusCode)
	}
	// Untrained: the controller cannot snapshot yet.
	resp, err = http.Get(ts.URL + "/v1/tenants/api/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("untrained model = %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("untrained checkpoint = %d, want 409", resp.StatusCode)
	}
}

func TestStatsAndMetricsEndpoints(t *testing.T) {
	srv, ts, traces := newAPIServer(t, Config{})
	vms := sortedVMs(traces)
	if _, err := srv.Ingest([]Batch{{Tenant: "api", Samples: []SampleIn{validSample(vms[0], 0)}}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Tenants != 1 || st.SamplesAccepted != 1 {
		t.Errorf("stats = %+v", st)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "prepare_server_ingest_samples_accepted") {
		t.Errorf("/metrics = %d: %.200s", resp.StatusCode, body)
	}
}
