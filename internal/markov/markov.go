// Package markov implements the attribute value predictors of PREPARE:
// the simple (first-order) Markov chain and the paper's 2-dependent
// Markov chain, both over discretized attribute values.
//
// The simple chain assumes the next value depends only on the current
// value. The 2-dependent chain (Figure 2 of the paper) combines every
// two consecutive single states into one combined state, so transitions
// depend on both the current and the prior value — this converts
// non-Markovian attributes (e.g., sinusoidally fluctuating metrics whose
// next value depends on whether they are on an increasing or a
// decreasing slope) into Markovian ones and improves multi-step
// prediction accuracy.
//
// Both predictors support batch fitting, incremental online updates (the
// paper periodically updates the value prediction model with new
// measurements), and k-step-ahead distribution prediction.
package markov

import (
	"errors"
	"fmt"
)

// laplaceAlpha is the additive smoothing constant for transition counts.
// It is deliberately small: with heavier smoothing, multi-step prediction
// leaks probability mass toward absorbing states (e.g., the "CPU pegged"
// bin that anomalies park in), which turns normal states into false
// alarms after a few propagation steps.
const laplaceAlpha = 0.05

// Predictor forecasts the distribution of a discretized attribute value
// several steps ahead.
type Predictor interface {
	// Observe feeds the next observed bin, updating both the model's
	// transition statistics and its notion of the current state.
	Observe(bin int) error
	// Predict returns the probability distribution over bins after the
	// given number of steps from the current state. With no observations
	// yet it returns the uniform distribution.
	Predict(steps int) []float64
	// PredictSeries returns the distributions at every horizon
	// 1..maxSteps in a single propagation pass (result[k] is the
	// distribution k+1 steps ahead).
	PredictSeries(maxSteps int) [][]float64
	// PredictSeriesInto is PredictSeries writing into caller-owned
	// storage: out[k] (len NumStates each) receives the distribution
	// k+1 steps ahead. It allocates nothing, which makes it the
	// building block of the fleet batch path (PredictSeriesBatch);
	// results are bit-identical to PredictSeries.
	PredictSeriesInto(out [][]float64)
	// NumStates returns the number of discretized states.
	NumStates() int
	// Observations returns how many observations the chain has absorbed
	// in total. Derived from the transition counts (plus the warm-up
	// states), so it survives snapshot round-trips — incremental training
	// uses it to assert that streamed and batch-fit chains saw the same
	// data.
	Observations() int
}

// ErrBadState is returned when an observation is outside [0, states).
var ErrBadState = errors.New("markov: observation out of range")

// SimpleChain is a first-order Markov chain over discretized values.
//
// Chains keep internal scratch buffers that are reused across Predict
// and PredictSeries calls, so a chain must not be used from multiple
// goroutines concurrently (Observe already made that true). Returned
// distributions are always freshly allocated and safe to retain.
type SimpleChain struct {
	states int
	counts [][]float64 // counts[i][j]: transitions i -> j
	cur    int
	seen   bool

	// Scratch reused across predictions; rows caches the smoothed
	// transition matrix and is invalidated whenever counts change.
	rows         [][]float64
	rowsValid    bool
	distA, distB []float64
}

var _ Predictor = (*SimpleChain)(nil)

// NewSimpleChain builds an untrained chain with the given number of
// discretized states.
func NewSimpleChain(states int) (*SimpleChain, error) {
	if states < 1 {
		return nil, fmt.Errorf("markov: states %d must be >= 1", states)
	}
	counts := make([][]float64, states)
	for i := range counts {
		counts[i] = make([]float64, states)
	}
	return &SimpleChain{states: states, counts: counts}, nil
}

// NumStates implements Predictor.
func (c *SimpleChain) NumStates() int { return c.states }

// Observations implements Predictor: the recorded transitions plus the
// initial warm-up observation.
func (c *SimpleChain) Observations() int {
	total := 0
	for _, row := range c.counts {
		for _, n := range row {
			total += int(n)
		}
	}
	if c.seen {
		total++
	}
	return total
}

// Observe implements Predictor.
func (c *SimpleChain) Observe(bin int) error {
	if bin < 0 || bin >= c.states {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadState, bin, c.states)
	}
	if c.seen {
		c.counts[c.cur][bin]++
		c.rowsValid = false
	}
	c.cur = bin
	c.seen = true
	return nil
}

// Fit feeds an entire observation sequence.
func (c *SimpleChain) Fit(seq []int) error {
	start := fitHook.Start()
	defer fitHook.Done(start)
	for i, b := range seq {
		if err := c.Observe(b); err != nil {
			return fmt.Errorf("markov: fit index %d: %w", i, err)
		}
	}
	return nil
}

// row returns the smoothed transition distribution out of state i.
func (c *SimpleChain) row(i int) []float64 {
	out := make([]float64, c.states)
	c.rowInto(i, out)
	return out
}

// rowInto writes the smoothed transition distribution out of state i
// into dst.
func (c *SimpleChain) rowInto(i int, dst []float64) {
	total := 0.0
	for j, n := range c.counts[i] {
		dst[j] = n + laplaceAlpha
		total += dst[j]
	}
	for j := range dst {
		dst[j] /= total
	}
}

// ensureScratch (re)builds the cached smoothed transition matrix and the
// ping-pong distribution buffers.
func (c *SimpleChain) ensureScratch() {
	if c.rows == nil {
		storage := make([]float64, c.states*c.states)
		c.rows = make([][]float64, c.states)
		for i := range c.rows {
			c.rows[i] = storage[i*c.states : (i+1)*c.states : (i+1)*c.states]
		}
		c.distA = make([]float64, c.states)
		c.distB = make([]float64, c.states)
	}
	if !c.rowsValid {
		for i := range c.rows {
			c.rowInto(i, c.rows[i])
		}
		c.rowsValid = true
	}
}

// Predict implements Predictor.
func (c *SimpleChain) Predict(steps int) []float64 {
	if steps < 1 {
		dist := make([]float64, c.states)
		if !c.seen {
			uniform(dist)
		} else {
			dist[c.cur] = 1
		}
		return dist
	}
	series := c.PredictSeries(steps)
	return series[steps-1]
}

// PredictSeries implements Predictor. The returned distributions are
// freshly allocated (one backing array for the whole series); all
// intermediate propagation state lives in scratch buffers reused across
// calls.
func (c *SimpleChain) PredictSeries(maxSteps int) [][]float64 {
	start := predictSeriesHook.Start()
	defer predictSeriesHook.Done(start)
	if maxSteps < 1 {
		maxSteps = 1
	}
	out := seriesSlices(maxSteps, c.states)
	if !c.seen {
		for s := range out {
			uniform(out[s])
		}
		return out
	}
	c.ensureScratch()
	dist, next := c.distA, c.distB
	clear(dist)
	dist[c.cur] = 1
	for s := 0; s < maxSteps; s++ {
		clear(next)
		for i, p := range dist {
			if p == 0 {
				continue
			}
			for j, q := range c.rows[i] {
				next[j] += p * q
			}
		}
		dist, next = next, dist
		copy(out[s], dist)
	}
	return out
}

// seriesSlices carves maxSteps independent distributions out of a single
// backing allocation.
func seriesSlices(maxSteps, states int) [][]float64 {
	storage := make([]float64, maxSteps*states)
	out := make([][]float64, maxSteps)
	for s := range out {
		out[s] = storage[s*states : (s+1)*states : (s+1)*states]
	}
	return out
}

// TwoDepChain is the paper's 2-dependent Markov chain: the combined state
// is the pair (previous bin, current bin), so transition probabilities
// condition on both.
//
// Like SimpleChain, a TwoDepChain reuses internal scratch buffers across
// predictions and must stay confined to one goroutine; returned
// distributions are freshly allocated.
type TwoDepChain struct {
	states int
	// counts[prev*states+cur][next]
	counts [][]float64
	prev   int
	cur    int
	nSeen  int // 0, 1 or 2+ observations so far

	// Smoothed-row cache: rows[idx] holds the distribution for combined
	// state idx, valid when rowVersion[idx] == version. Observe bumps
	// version, invalidating every cached row at once (an observation
	// also shifts the backoff aggregates other rows depend on).
	rows         [][]float64
	rowVersion   []uint64
	version      uint64
	distA, distB []float64 // states*states propagation scratch

	// Batch-path bookkeeping (batch.go): an observation of combined
	// state (prev, cur) can only change the smoothed rows in column cur
	// — the incremented row itself plus the backoff rows that aggregate
	// over that column — so refreshRows revalidates just the columns
	// touched since the last refresh instead of all states² rows.
	// dirtyCols is a column bitmask (dirtyAll covers states > 64);
	// rowsFresh is the version at which every row was last made valid.
	dirtyCols uint64
	dirtyAll  bool
	rowsFresh uint64
}

var _ Predictor = (*TwoDepChain)(nil)

// NewTwoDepChain builds an untrained 2-dependent chain.
func NewTwoDepChain(states int) (*TwoDepChain, error) {
	if states < 1 {
		return nil, fmt.Errorf("markov: states %d must be >= 1", states)
	}
	counts := make([][]float64, states*states)
	for i := range counts {
		counts[i] = make([]float64, states)
	}
	return &TwoDepChain{states: states, counts: counts}, nil
}

// NumStates implements Predictor.
func (c *TwoDepChain) NumStates() int { return c.states }

// Observations implements Predictor: the recorded transitions plus the
// two warm-up observations that seed the combined state.
func (c *TwoDepChain) Observations() int {
	total := 0
	for _, row := range c.counts {
		for _, n := range row {
			total += int(n)
		}
	}
	return total + c.nSeen
}

// Observe implements Predictor.
func (c *TwoDepChain) Observe(bin int) error {
	if bin < 0 || bin >= c.states {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadState, bin, c.states)
	}
	switch c.nSeen {
	case 0:
		c.cur = bin
		c.nSeen = 1
	case 1:
		c.prev, c.cur = c.cur, bin
		c.nSeen = 2
	default:
		c.counts[c.prev*c.states+c.cur][bin]++
		c.version++
		if c.cur < 64 {
			c.dirtyCols |= 1 << uint(c.cur)
		} else {
			c.dirtyAll = true
		}
		c.prev, c.cur = c.cur, bin
	}
	return nil
}

// Fit feeds an entire observation sequence.
func (c *TwoDepChain) Fit(seq []int) error {
	start := fitHook.Start()
	defer fitHook.Done(start)
	for i, b := range seq {
		if err := c.Observe(b); err != nil {
			return fmt.Errorf("markov: fit index %d: %w", i, err)
		}
	}
	return nil
}

// rowFor returns the smoothed next-bin distribution for combined state
// (prev, cur). When the combined state was never observed, it backs off
// to the aggregate distribution conditioned on cur alone, which keeps
// sparse pairs from collapsing to uniform noise.
func (c *TwoDepChain) rowFor(prev, cur int) []float64 {
	out := make([]float64, c.states)
	c.rowInto(prev, cur, out)
	return out
}

// rowInto writes the smoothed next-bin distribution for combined state
// (prev, cur) into dst.
func (c *TwoDepChain) rowInto(prev, cur int, dst []float64) {
	idx := prev*c.states + cur
	total := 0.0
	for _, n := range c.counts[idx] {
		total += n
	}
	if total > 0 {
		for j, n := range c.counts[idx] {
			dst[j] = (n + laplaceAlpha) / (total + laplaceAlpha*float64(c.states))
		}
		return
	}
	// Back off: aggregate over all prev with the same cur.
	clear(dst)
	aggTotal := 0.0
	for p := 0; p < c.states; p++ {
		for j, n := range c.counts[p*c.states+cur] {
			dst[j] += n
			aggTotal += n
		}
	}
	for j := range dst {
		dst[j] = (dst[j] + laplaceAlpha) / (aggTotal + laplaceAlpha*float64(c.states))
	}
}

// ensureScratch allocates the row cache and propagation buffers on first
// use. Rows are filled lazily per combined state: most are never reached.
func (c *TwoDepChain) ensureScratch() {
	if c.rows != nil {
		return
	}
	n := c.states * c.states
	storage := make([]float64, n*c.states)
	c.rows = make([][]float64, n)
	for i := range c.rows {
		c.rows[i] = storage[i*c.states : (i+1)*c.states : (i+1)*c.states]
	}
	c.rowVersion = make([]uint64, n)
	c.version++ // ensure version > 0 so zeroed rowVersion reads as stale
	c.distA = make([]float64, n)
	c.distB = make([]float64, n)
}

// rowAt returns the (cached) smoothed row for combined state idx.
func (c *TwoDepChain) rowAt(idx int) []float64 {
	if c.rowVersion[idx] != c.version {
		c.rowInto(idx/c.states, idx%c.states, c.rows[idx])
		c.rowVersion[idx] = c.version
	}
	return c.rows[idx]
}

// Predict implements Predictor. The distribution over combined states is
// propagated step by step, then marginalized over the latest bin.
func (c *TwoDepChain) Predict(steps int) []float64 {
	if steps < 1 {
		out := make([]float64, c.states)
		if c.nSeen == 0 {
			uniform(out)
		} else {
			out[c.cur] = 1
		}
		return out
	}
	series := c.PredictSeries(steps)
	return series[steps-1]
}

// PredictSeries implements Predictor. The returned marginals are freshly
// allocated (one backing array for the whole series); the combined-state
// propagation buffers and the smoothed-row cache are reused across calls.
func (c *TwoDepChain) PredictSeries(maxSteps int) [][]float64 {
	start := predictSeriesHook.Start()
	defer predictSeriesHook.Done(start)
	if maxSteps < 1 {
		maxSteps = 1
	}
	out := seriesSlices(maxSteps, c.states)
	if c.nSeen <= 1 {
		for s := range out {
			uniform(out[s])
		}
		return out
	}
	c.ensureScratch()
	dist, next := c.distA, c.distB
	clear(dist)
	dist[c.prev*c.states+c.cur] = 1
	for s := 0; s < maxSteps; s++ {
		clear(next)
		for idx, p := range dist {
			if p == 0 {
				continue
			}
			cur := idx % c.states
			base := cur * c.states
			for j, q := range c.rowAt(idx) {
				next[base+j] += p * q
			}
		}
		dist, next = next, dist
		marg := out[s]
		for idx, p := range dist {
			marg[idx%c.states] += p
		}
	}
	return out
}

func uniform(dist []float64) {
	for i := range dist {
		dist[i] = 1 / float64(len(dist))
	}
}

// ArgMax returns the index of the largest probability (ties break low).
func ArgMax(dist []float64) int {
	best, bestIdx := -1.0, 0
	for i, p := range dist {
		if p > best {
			best = p
			bestIdx = i
		}
	}
	return bestIdx
}

// Expectation returns the expected bin index under the distribution.
func Expectation(dist []float64) float64 {
	e := 0.0
	for i, p := range dist {
		e += float64(i) * p
	}
	return e
}
