package experiment

import (
	"testing"

	"prepare/internal/control"
	"prepare/internal/faults"
)

// TestSmokeAllCells runs every app × fault × scheme cell once (scaling
// policy) and prints the violation times, acting as the end-to-end
// integration test for the whole pipeline.
func TestSmokeAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	for _, app := range []AppKind{SystemS, RUBiS} {
		for _, fault := range []faults.Kind{faults.MemoryLeak, faults.CPUHog, faults.Bottleneck} {
			results := map[control.Scheme]Result{}
			for _, scheme := range []control.Scheme{control.SchemeNone, control.SchemeReactive, control.SchemePREPARE} {
				res, err := Run(Scenario{App: app, Fault: fault, Scheme: scheme, Seed: 42})
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", app, fault, scheme, err)
				}
				results[scheme] = res
				t.Logf("%v %v %v: eval violation %ds, total %ds, steps %d, alerts %d",
					app, fault, scheme, res.EvalViolationSeconds, res.TotalViolationSeconds,
					len(res.Steps), len(res.Alerts))
			}
			none := results[control.SchemeNone].EvalViolationSeconds
			reactive := results[control.SchemeReactive].EvalViolationSeconds
			prep := results[control.SchemePREPARE].EvalViolationSeconds
			if none == 0 {
				t.Errorf("%v/%v: without-intervention has zero violation — fault too weak", app, fault)
			}
			if prep > none {
				t.Errorf("%v/%v: PREPARE (%d) worse than none (%d)", app, fault, prep, none)
			}
			if reactive > none {
				t.Errorf("%v/%v: reactive (%d) worse than none (%d)", app, fault, reactive, none)
			}
		}
	}
}
