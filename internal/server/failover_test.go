package server

import (
	"bytes"
	"testing"

	"prepare/internal/metrics"
	"prepare/internal/substrate"
)

// TestServerWarmFailover: a cold replica restored from a checkpoint and
// fed the post-checkpoint samples must publish a byte-identical
// subsequent alert stream and audit log. The checkpoint is taken in the
// quiet zone between fault episodes (t=700: models trained at 600, the
// next episode starts at 900) — the periodic checkpointer skips
// untrained tenants the same way.
func TestServerWarmFailover(t *testing.T) {
	const ckptAt = 700
	tenants := []string{"east", "west"}
	traces := make(map[string]map[substrate.VMID][]metrics.Sample, len(tenants))
	build := func(trainAtS int64) []TenantConfig {
		cfgs := make([]TenantConfig, 0, len(tenants))
		for i, id := range tenants {
			seed := int64(400 + i*31)
			if traces[id] == nil {
				traces[id] = tenantTraces(id, 2, seed)
			}
			cfgs = append(cfgs, TenantConfig{
				ID:      id,
				VMs:     sortedVMs(traces[id]),
				Control: testControlConfig(seed, trainAtS),
			})
		}
		return cfgs
	}

	// Primary: train live, checkpoint at the quiet point, keep going.
	primary, err := New(build(testTrainAt), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	feed(t, primary, traces, 0, ckptAt)
	var ckpt bytes.Buffer
	// Every accepted batch is enqueued ahead of the barrier, so the
	// checkpoint captures tick state exactly at the watermark.
	if err := primary.Checkpoint(&ckpt); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	feed(t, primary, traces, ckptAt+5, testHorizon)
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Failure(); err != nil {
		t.Fatalf("primary failed: %v", err)
	}

	// Replica: never trains online (TrainAtS=0) — its models come solely
	// from the checkpoint — and sees only the post-checkpoint suffix.
	replica, err := New(build(0), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := replica.Start(); err != nil {
		t.Fatal(err)
	}
	feed(t, replica, traces, ckptAt+5, testHorizon)
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	if err := replica.Failure(); err != nil {
		t.Fatalf("replica failed: %v", err)
	}

	// The primary's post-checkpoint alert stream, canonically ordered.
	var wantAlerts []Alert
	for _, a := range drainAlerts(primary) {
		if a.Time.Seconds() > ckptAt {
			wantAlerts = append(wantAlerts, a)
		}
	}
	wantAlerts = canonicalAlerts(wantAlerts)
	gotAlerts := canonicalAlerts(drainAlerts(replica))
	if len(wantAlerts) == 0 {
		t.Fatal("primary produced no post-checkpoint alerts; scenario too quiet to prove failover")
	}
	want, got := mustJSON(t, wantAlerts), mustJSON(t, gotAlerts)
	if !bytes.Equal(want, got) {
		t.Errorf("failover alert streams differ:\n got %s\nwant %s", got, want)
	}

	var wantAudit []AuditEntry
	for _, a := range drainAudit(primary) {
		if a.Time.Seconds() > ckptAt {
			wantAudit = append(wantAudit, a)
		}
	}
	wantAudit = canonicalAudit(wantAudit)
	gotAudit := canonicalAudit(drainAudit(replica))
	want, got = mustJSON(t, wantAudit), mustJSON(t, gotAudit)
	if !bytes.Equal(want, got) {
		t.Errorf("failover audit logs differ:\n got %s\nwant %s", got, want)
	}
}

// TestRestoreRejectsBadCheckpoints: version and topology mismatches are
// refused before any state is installed, and restore after Start is an
// error.
func TestRestoreRejectsBadCheckpoints(t *testing.T) {
	traces := map[string]map[substrate.VMID][]metrics.Sample{
		"solo": tenantTraces("solo", 1, 3),
	}
	mk := func() *Server {
		s, err := New([]TenantConfig{{
			ID:      "solo",
			VMs:     sortedVMs(traces["solo"]),
			Control: testControlConfig(3, 0),
		}}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := mk()
	if err := s.Restore(bytes.NewReader([]byte(`{"version":99,"ticks":{"solo":10},"models":{}}`))); err == nil {
		t.Error("restore accepted an unknown checkpoint version")
	}
	s = mk()
	if err := s.Restore(bytes.NewReader([]byte(`{"version":1,"ticks":{"other":10},"models":{}}`))); err == nil {
		t.Error("restore accepted a checkpoint missing this topology's tenant")
	}
	s = mk()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Restore(bytes.NewReader([]byte(`{}`))); err == nil {
		t.Error("restore accepted a running server")
	}
}
