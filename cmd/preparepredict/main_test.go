package main

import (
	"os"
	"path/filepath"
	"testing"

	"prepare"
	"prepare/internal/simclock"
)

func writeFixtureCSV(t *testing.T, path string, declineFrom int) {
	t.Helper()
	var samples []prepare.Sample
	for i := 0; i < 160; i++ {
		var sm prepare.Sample
		sm.Time = simclock.Time(i * 5)
		free := 900.0
		if i >= declineFrom {
			free = 900 - 12*float64(i-declineFrom)
		}
		if free < 0 {
			free = 0
		}
		for j := range sm.Values {
			sm.Values[j] = 50
		}
		sm.Values.Set(prepare.Attribute(4), free) // free_mem
		if free < 300 {
			sm.Label = prepare.LabelAbnormal
		} else {
			sm.Label = prepare.LabelNormal
		}
		samples = append(samples, sm)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := prepare.WriteSamplesCSV(f, samples); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresPaths(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -train/-test should fail")
	}
	if err := run([]string{"-train", "x.csv"}); err == nil {
		t.Error("missing -test should fail")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"-train", "/no/such.csv", "-test", "/no/such2.csv"}); err == nil {
		t.Error("missing files should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "train.csv")
	testPath := filepath.Join(dir, "test.csv")
	writeFixtureCSV(t, trainPath, 80)
	writeFixtureCSV(t, testPath, 90)
	if err := run([]string{"-train", trainPath, "-test", testPath,
		"-lookahead", "20", "-filter-k", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Simple Markov + naive Bayes variant.
	if err := run([]string{"-train", trainPath, "-test", testPath,
		"-order", "1", "-naive"}); err != nil {
		t.Fatalf("run simple/naive: %v", err)
	}
}
