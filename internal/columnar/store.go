// Package columnar holds fleet metric samples in struct-of-arrays form:
// one contiguous ring-buffered float64 slab per monitored attribute
// across every VM, instead of one Sample struct per VM per tick.
//
// The row-oriented map[VMID]Sample the per-VM control path passes around
// is convenient but hostile to fleet-scale sweeps: each tick allocates a
// fresh map and scatters the 13 attribute values of each VM across the
// heap, so batch sanitize/discretize/predict passes stride through
// pointers instead of streaming cache lines. The columnar Store keeps a
// tick-major layout per attribute —
//
//	col[a][slot*nVMs + vm]
//
// — so "attribute a of the whole fleet at the latest tick" is one
// contiguous slice (Column) that a single sweep can sanitize or
// discretize, while "the full row of one VM" is a strided gather
// (RowInto) that the per-VM model updates still need. Ticks are a ring:
// once Window ticks are held, each Commit overwrites the oldest.
//
// Writers stage the next tick with StageRow and publish it atomically
// (with respect to the accessors, not goroutines) with Commit; the Store
// itself is not safe for concurrent use, matching the rest of the
// control loop.
package columnar

import (
	"fmt"
	"math"

	"prepare/internal/metrics"
	"prepare/internal/simclock"
)

// Store is a struct-of-arrays ring of fleet metric samples.
type Store struct {
	nVMs   int
	window int

	// cols[a] has window*nVMs values laid out tick-major; the tick in
	// ring slot s occupies cols[a][s*nVMs : (s+1)*nVMs].
	cols [metrics.NumAttributes][]float64

	times  []simclock.Time
	labels []metrics.Label

	head  int // ring slot of the oldest committed tick
	count int // committed ticks currently held (≤ window)
}

// New builds a store for nVMs VMs retaining the most recent window
// ticks.
func New(nVMs, window int) (*Store, error) {
	if nVMs < 1 {
		return nil, fmt.Errorf("columnar: nVMs %d must be >= 1", nVMs)
	}
	if window < 1 {
		return nil, fmt.Errorf("columnar: window %d must be >= 1", window)
	}
	s := &Store{nVMs: nVMs, window: window,
		times:  make([]simclock.Time, window),
		labels: make([]metrics.Label, window),
	}
	for a := range s.cols {
		s.cols[a] = make([]float64, window*nVMs)
	}
	return s, nil
}

// VMs returns the fleet size the store was built for.
func (s *Store) VMs() int { return s.nVMs }

// Window returns the ring capacity in ticks.
func (s *Store) Window() int { return s.window }

// Ticks returns how many committed ticks the ring currently holds.
func (s *Store) Ticks() int { return s.count }

// stageSlot is the ring slot the next Commit will publish.
func (s *Store) stageSlot() int {
	if s.count < s.window {
		return (s.head + s.count) % s.window
	}
	return s.head // full ring: overwrite the oldest
}

// slotOf maps "back ticks before the latest" to a ring slot.
func (s *Store) slotOf(back int) int {
	if back < 0 || back >= s.count {
		panic(fmt.Sprintf("columnar: tick back=%d out of range (have %d)", back, s.count))
	}
	return (s.head + s.count - 1 - back) % s.window
}

// StageRow writes one VM's full attribute vector into the tick being
// staged. vm indexes the fleet in the caller's fixed order (the sampler's
// VM order in the control loop).
func (s *Store) StageRow(vm int, v *metrics.Vector) {
	if vm < 0 || vm >= s.nVMs {
		panic(fmt.Sprintf("columnar: vm %d out of range [0,%d)", vm, s.nVMs))
	}
	base := s.stageSlot() * s.nVMs
	for a := range s.cols {
		s.cols[a][base+vm] = v[a]
	}
}

// StageValue writes a single attribute of a single VM into the tick
// being staged.
func (s *Store) StageValue(vm int, a metrics.Attribute, val float64) {
	s.cols[a.Index()][s.stageSlot()*s.nVMs+vm] = val
}

// Commit publishes the staged tick with its timestamp and fleet-wide
// SLO label, evicting the oldest tick once the ring is full.
func (s *Store) Commit(t simclock.Time, label metrics.Label) {
	slot := s.stageSlot()
	s.times[slot] = t
	s.labels[slot] = label
	if s.count < s.window {
		s.count++
	} else {
		s.head = (s.head + 1) % s.window
	}
}

// Column returns attribute a across the whole fleet at the latest
// committed tick, as one contiguous slice indexed by VM. The slice
// aliases the ring and is valid until that slot is overwritten.
func (s *Store) Column(a metrics.Attribute) []float64 {
	return s.ColumnAt(0, a)
}

// ColumnAt returns attribute a across the fleet back ticks before the
// latest committed tick (back=0 is the latest).
func (s *Store) ColumnAt(back int, a metrics.Attribute) []float64 {
	base := s.slotOf(back) * s.nVMs
	return s.cols[a.Index()][base : base+s.nVMs]
}

// RowInto gathers one VM's 13 attribute values at the latest committed
// tick into dst (len >= NumAttributes), in Attribute.Index order — the
// layout model training consumes.
func (s *Store) RowInto(vm int, dst []float64) {
	if vm < 0 || vm >= s.nVMs {
		panic(fmt.Sprintf("columnar: vm %d out of range [0,%d)", vm, s.nVMs))
	}
	base := s.slotOf(0)*s.nVMs + vm
	_ = dst[metrics.NumAttributes-1]
	for a := range s.cols {
		dst[a] = s.cols[a][base]
	}
}

// Latest returns attribute a of one VM at the latest committed tick.
func (s *Store) Latest(vm int, a metrics.Attribute) float64 {
	return s.ColumnAt(0, a)[vm]
}

// Time returns the timestamp of the tick back ticks before the latest.
func (s *Store) Time(back int) simclock.Time { return s.times[s.slotOf(back)] }

// Label returns the fleet-wide SLO label of the tick back ticks before
// the latest.
func (s *Store) Label(back int) metrics.Label { return s.labels[s.slotOf(back)] }

// badValue mirrors the monitor package's sanitization predicate: the 13
// monitored attributes are nonnegative finite quantities, so NaN, ±Inf,
// and negative readings are collector defects.
func badValue(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0) || x < 0
}

// SanitizeColumn repairs one attribute column in place over the whole
// fleet: every NaN, ±Inf, or negative value is replaced by the same VM's
// fallback (its last known-good value for this attribute), or by zero
// when the fallback is itself unusable. It applies exactly the
// per-element rule of monitor.SanitizeVector, columnwise, and returns
// how many values were repaired.
func SanitizeColumn(col, fallback []float64) int {
	repaired := 0
	for i, x := range col {
		if badValue(x) {
			f := fallback[i]
			if badValue(f) {
				f = 0
			}
			col[i] = f
			repaired++
		}
	}
	return repaired
}

// DiscretizeColumn maps one attribute column onto bins for the whole
// fleet in a single pass: out[vm] = d.Bin(col[vm]). out must have
// len(col) elements.
func DiscretizeColumn(d metrics.Discretizer, col []float64, out []int) {
	_ = out[len(col)-1]
	for i, x := range col {
		out[i] = d.Bin(x)
	}
}
