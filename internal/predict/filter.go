package predict

import "fmt"

// AlarmFilter implements the paper's false-alarm filtering: a simple
// majority voting scheme that confirms an anomaly alert only after
// receiving at least K alerts within the most recent W predictions. Real
// anomaly symptoms persist, while most false alarms come from transient,
// sporadic resource spikes. The paper sets K=3, W=4.
// The window is a fixed ring sized at construction, so steady-state
// Offer calls never allocate — the fleet batch path pins its per-tick
// allocation budget on this.
type AlarmFilter struct {
	k, w int
	ring []bool
	n    int // live entries (≤ w)
	next int // ring slot the next Offer writes
}

// DefaultAlarmK and DefaultAlarmW are the paper's filter settings.
const (
	DefaultAlarmK = 3
	DefaultAlarmW = 4
)

// NewAlarmFilter builds a K-of-W filter.
func NewAlarmFilter(k, w int) (*AlarmFilter, error) {
	if w < 1 {
		return nil, fmt.Errorf("predict: window %d must be >= 1", w)
	}
	if k < 1 || k > w {
		return nil, fmt.Errorf("predict: threshold %d must be in [1, %d]", k, w)
	}
	return &AlarmFilter{k: k, w: w, ring: make([]bool, w)}, nil
}

// Offer records the latest raw prediction and reports whether the alarm
// is confirmed (at least K of the last W raw predictions were alerts).
func (f *AlarmFilter) Offer(alert bool) bool {
	f.ring[f.next] = alert
	f.next = (f.next + 1) % f.w
	if f.n < f.w {
		f.n++
	}
	count := 0
	for _, a := range f.ring[:f.n] {
		if a {
			count++
		}
	}
	return count >= f.k
}

// Reset clears the filter's history (used after a prevention action so
// stale alerts do not immediately re-trigger).
func (f *AlarmFilter) Reset() {
	f.n, f.next = 0, 0
}

// K returns the confirmation threshold.
func (f *AlarmFilter) K() int { return f.k }

// W returns the voting window size.
func (f *AlarmFilter) W() int { return f.w }
