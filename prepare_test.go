package prepare

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRunQuickScenario(t *testing.T) {
	res, err := Run(Scenario{App: RUBiS, Fault: CPUHog, Scheme: SchemePREPARE, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TotalViolationSeconds == 0 {
		t.Error("fault should have caused some violation")
	}
	if len(res.Trace) == 0 {
		t.Error("trace should be recorded")
	}
	if len(res.VMOrder) != 4 {
		t.Errorf("RUBiS runs 4 VMs, got %d", len(res.VMOrder))
	}
}

func TestRepeatSummarizes(t *testing.T) {
	stat, results, err := Repeat(Scenario{App: RUBiS, Fault: CPUHog, Scheme: SchemeNone, Seed: 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stat.N != 2 || len(results) != 2 {
		t.Errorf("stat.N = %d, results = %d", stat.N, len(results))
	}
	if stat.Mean <= 0 {
		t.Error("unmanaged fault should violate the SLO")
	}
}

func TestPREPAREBeatsNoIntervention(t *testing.T) {
	base, err := Run(Scenario{App: SystemS, Fault: MemoryLeak, Scheme: SchemeNone, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	managed, err := Run(Scenario{App: SystemS, Fault: MemoryLeak, Scheme: SchemePREPARE, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if managed.EvalViolationSeconds >= base.EvalViolationSeconds {
		t.Errorf("PREPARE %ds should beat none %ds",
			managed.EvalViolationSeconds, base.EvalViolationSeconds)
	}
	if len(managed.Steps) == 0 {
		t.Error("PREPARE should have executed prevention steps")
	}
}

func TestPublicPredictorWorkflow(t *testing.T) {
	// Train a predictor on a synthetic declining metric and verify the
	// public API end to end: NewPredictor -> Train -> Observe ->
	// PredictWindow -> alarm filtering.
	rng := rand.New(rand.NewSource(2))
	names := []string{"free_mb", "latency_ms"}
	// Stationary baseline, then a leak-like decline; violation once free
	// memory drops below 250 (index 214).
	value := func(i int) (free, lat float64) {
		free = 1000 + 20*rng.NormFloat64()
		if i >= 120 {
			free = 1000 - 8*float64(i-120) + 20*rng.NormFloat64()
		}
		lat = 10 + 2000/(free+50) + rng.Float64()
		return free, lat
	}
	var rows [][]float64
	var labels []Label
	for i := 0; i < 240; i++ {
		free, lat := value(i)
		rows = append(rows, []float64{free, lat})
		if free < 250 {
			labels = append(labels, LabelAbnormal)
		} else {
			labels = append(labels, LabelNormal)
		}
	}
	p, err := NewPredictor(PredictorConfig{Bins: 10}, names)
	if err != nil {
		t.Fatal(err)
	}
	RelabelForTraining(rows, labels, 6)
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	filter, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	confirmedAt := -1
	violatedAt := -1
	for i := 0; i < 240; i++ {
		free, lat := value(i)
		if violatedAt < 0 && free < 250 {
			violatedAt = i
		}
		if err := p.Observe([]float64{free, lat}); err != nil {
			t.Fatal(err)
		}
		v, err := p.PredictWindow(60)
		if err != nil {
			t.Fatal(err)
		}
		if filter.Offer(v.Abnormal) && confirmedAt < 0 {
			confirmedAt = i
		}
	}
	if confirmedAt < 0 {
		t.Fatal("no confirmed alert on a replayed leak")
	}
	if violatedAt < 0 {
		t.Fatal("replay never violated")
	}
	// A confirmed alert within a few samples of the violation (ideally
	// before it) demonstrates the predict-then-filter pipeline works.
	if confirmedAt > violatedAt+5 {
		t.Errorf("alert confirmed at step %d, violation at %d", confirmedAt, violatedAt)
	}
}

func TestAttributeNamesExposed(t *testing.T) {
	names := AttributeNames()
	if len(names) != 13 {
		t.Errorf("got %d attribute names, want 13", len(names))
	}
}

func TestAccuracySweepPublicAPI(t *testing.T) {
	ds, err := CollectDataset(Scenario{App: RUBiS, Fault: MemoryLeak, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	points, err := AccuracySweep(ds, []int64{15, 30}, AccuracyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].AT <= 0 {
		t.Error("A_T should be positive for a gradual leak")
	}
}

func TestKindStrings(t *testing.T) {
	if SystemS.String() != "systems" || RUBiS.String() != "rubis" {
		t.Error("app names wrong")
	}
	if MemoryLeak.String() != "memleak" || SchemePREPARE.String() != "prepare" {
		t.Error("kind names wrong")
	}
}

func TestPredictorSaveLoadPublic(t *testing.T) {
	rows := [][]float64{}
	labels := []Label{}
	for i := 0; i < 120; i++ {
		v := 100.0
		label := LabelNormal
		if i >= 60 && i < 90 {
			v = 20
			label = LabelAbnormal
		}
		rows = append(rows, []float64{v, float64(i % 7)})
		labels = append(labels, label)
	}
	p, err := NewPredictor(PredictorConfig{Bins: 6}, []string{"m1", "m2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	abnormal, err := q.ClassifyCurrent([]float64{20, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !abnormal {
		t.Error("loaded predictor should classify the trained anomaly")
	}
}
