package metrics

import (
	"fmt"

	"prepare/internal/simclock"
)

// Label classifies a sample according to the application's SLO state at
// the sample's timestamp. LabelUnknown is the zero value so unlabeled
// data is the natural default.
type Label int

const (
	// LabelUnknown marks samples that have not been correlated with the
	// SLO violation log yet.
	LabelUnknown Label = iota
	// LabelNormal marks samples taken while the SLO was satisfied.
	LabelNormal
	// LabelAbnormal marks samples taken while the SLO was violated.
	LabelAbnormal
)

// String returns a short human-readable label name.
func (l Label) String() string {
	switch l {
	case LabelNormal:
		return "normal"
	case LabelAbnormal:
		return "abnormal"
	case LabelUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// Vector holds one value per monitored attribute, indexed by
// Attribute.Index().
type Vector [NumAttributes]float64

// Get returns the value of the given attribute.
func (v Vector) Get(a Attribute) float64 { return v[a.Index()] }

// Set assigns the value of the given attribute.
func (v *Vector) Set(a Attribute, val float64) { v[a.Index()] = val }

// Sample is one monitoring observation of a single VM: a timestamped
// vector of the 13 attribute values plus an SLO-derived label.
type Sample struct {
	Time   simclock.Time
	Values Vector
	Label  Label
}

// Series is an append-only labeled time series of samples for one VM.
// The zero value is an empty unbounded series ready to use. A series
// built with NewBoundedSeries instead retains only the most recent
// samples in a fixed ring, bounding memory for long-running monitoring;
// every accessor works in logical (oldest-first) order either way.
type Series struct {
	samples []Sample
	head    int // ring index of the oldest sample (always 0 when unbounded)
	count   int // live samples
	limit   int // ring capacity; 0 = unbounded
}

// NewSeries returns an empty unbounded series with capacity for n
// samples.
func NewSeries(n int) *Series {
	return &Series{samples: make([]Sample, 0, n)}
}

// NewBoundedSeries returns an empty series that retains only the limit
// most recent samples: once full, each Append evicts the oldest. limit
// must be positive.
func NewBoundedSeries(limit int) (*Series, error) {
	if limit < 1 {
		return nil, fmt.Errorf("metrics: series limit %d must be >= 1", limit)
	}
	return &Series{samples: make([]Sample, 0, limit), limit: limit}, nil
}

// idx maps a logical (oldest-first) position to a storage index.
func (s *Series) idx(i int) int {
	j := s.head + i
	if j >= len(s.samples) && len(s.samples) > 0 {
		j -= len(s.samples)
	}
	return j
}

// Append adds a sample to the end of the series, evicting the oldest
// when a bounded series is full. Samples are expected in non-decreasing
// time order; Append returns an error otherwise so callers catch wiring
// mistakes early.
func (s *Series) Append(sm Sample) error {
	if s.count > 0 {
		if last := s.samples[s.idx(s.count-1)]; sm.Time.Before(last.Time) {
			return fmt.Errorf("metrics: sample at %v appended after %v", sm.Time, last.Time)
		}
	}
	if s.limit > 0 && s.count == s.limit {
		s.samples[s.head] = sm
		s.head++
		if s.head == s.limit {
			s.head = 0
		}
		return nil
	}
	s.samples = append(s.samples, sm)
	s.count++
	return nil
}

// Len returns the number of samples in the series.
func (s *Series) Len() int { return s.count }

// Limit returns the ring capacity (0 for an unbounded series).
func (s *Series) Limit() int { return s.limit }

// At returns the i-th retained sample (0-based, oldest first).
func (s *Series) At(i int) Sample { return s.samples[s.idx(i)] }

// Last returns the most recent sample. The boolean is false when the
// series is empty.
func (s *Series) Last() (Sample, bool) {
	if s.count == 0 {
		return Sample{}, false
	}
	return s.samples[s.idx(s.count-1)], true
}

// Recent returns up to the last n samples, oldest first. The returned
// slice is a copy so callers cannot mutate the series.
func (s *Series) Recent(n int) []Sample {
	if n > s.count {
		n = s.count
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		out[i] = s.samples[s.idx(s.count-n+i)]
	}
	return out
}

// Window returns a copy of the retained samples with from <= t < to.
func (s *Series) Window(from, to simclock.Time) []Sample {
	var out []Sample
	for i := 0; i < s.count; i++ {
		sm := s.samples[s.idx(i)]
		if !sm.Time.Before(from) && sm.Time.Before(to) {
			out = append(out, sm)
		}
	}
	return out
}

// All returns a copy of every retained sample, oldest first.
func (s *Series) All() []Sample {
	out := make([]Sample, s.count)
	for i := range out {
		out[i] = s.samples[s.idx(i)]
	}
	return out
}

// Column extracts the values of a single attribute across all retained
// samples.
func (s *Series) Column(a Attribute) []float64 {
	out := make([]float64, s.count)
	for i := range out {
		out[i] = s.samples[s.idx(i)].Values.Get(a)
	}
	return out
}

// Relabel sets the label of every sample using the provided oracle, which
// maps a timestamp to the SLO state at that instant. This implements the
// paper's automatic runtime data labeling: measurements are matched
// against the SLO violation log by timestamp.
func (s *Series) Relabel(oracle func(simclock.Time) Label) {
	for i := range s.samples {
		s.samples[i].Label = oracle(s.samples[i].Time)
	}
}
