package predict

import (
	"testing"
	"testing/quick"
)

func TestNewAlarmFilterValidation(t *testing.T) {
	if _, err := NewAlarmFilter(0, 4); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewAlarmFilter(5, 4); err == nil {
		t.Error("k>w should fail")
	}
	if _, err := NewAlarmFilter(1, 0); err == nil {
		t.Error("w=0 should fail")
	}
	f, err := NewAlarmFilter(DefaultAlarmK, DefaultAlarmW)
	if err != nil {
		t.Fatal(err)
	}
	if f.K() != 3 || f.W() != 4 {
		t.Errorf("K/W = %d/%d", f.K(), f.W())
	}
}

func TestFilterSuppressesTransientSpike(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A single spike followed by quiet: never confirmed.
	seq := []bool{false, true, false, false, false}
	for i, a := range seq {
		if f.Offer(a) {
			t.Errorf("transient spike confirmed at index %d", i)
		}
	}
}

func TestFilterConfirmsPersistentAlerts(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	results := []bool{}
	for _, a := range []bool{true, true, true, true} {
		results = append(results, f.Offer(a))
	}
	// Confirmation exactly at the third alert.
	want := []bool{false, false, true, true}
	for i := range want {
		if results[i] != want[i] {
			t.Errorf("offer %d = %v, want %v", i, results[i], want[i])
		}
	}
}

func TestFilterToleratesOneGap(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// alert, alert, miss, alert => 3 of last 4 => confirmed.
	seq := []bool{true, true, false, true}
	var last bool
	for _, a := range seq {
		last = f.Offer(a)
	}
	if !last {
		t.Error("3-of-4 with one gap should confirm")
	}
}

func TestFilterK1ConfirmsImmediately(t *testing.T) {
	f, err := NewAlarmFilter(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Offer(false) {
		t.Error("no alert should not confirm")
	}
	if !f.Offer(true) {
		t.Error("k=1 should confirm on first alert")
	}
}

func TestFilterReset(t *testing.T) {
	f, err := NewAlarmFilter(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	f.Offer(true)
	f.Offer(true)
	f.Reset()
	if f.Offer(true) {
		t.Error("after reset a single alert should not confirm (k=2)")
	}
}

func TestPropertyLargerKNeverConfirmsMore(t *testing.T) {
	// For the same alert stream, a filter with larger K confirms a subset
	// of what a filter with smaller K confirms (monotonicity that drives
	// Figure 12: larger k filters more false alarms).
	f := func(stream []bool) bool {
		f2, err := NewAlarmFilter(2, 4)
		if err != nil {
			return false
		}
		f3, err := NewAlarmFilter(3, 4)
		if err != nil {
			return false
		}
		for _, a := range stream {
			c2 := f2.Offer(a)
			c3 := f3.Offer(a)
			if c3 && !c2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlarmFilterOfferAllocFree(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		f.Offer(i%3 == 0)
		i++
		if i%17 == 0 {
			f.Reset()
		}
	})
	if allocs != 0 {
		t.Fatalf("Offer/Reset allocates %.1f/op, want 0", allocs)
	}
}

// TestFilterWraparoundEviction pins the ring semantics at exactly W
// offers and one past it: the W+1th offer must evict the oldest vote,
// not stack on top of it.
func TestFilterWraparoundEviction(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Offers 1-3: T,T,T — confirmed from the 3rd (k reached before the
	// window is even full).
	for i, want := range []bool{false, false, true} {
		if got := f.Offer(true); got != want {
			t.Fatalf("offer %d = %v, want %v", i+1, got, want)
		}
	}
	// Offer 4 fills the window: T,T,T,F still holds 3 votes.
	if !f.Offer(false) {
		t.Fatal("offer 4: window T,T,T,F should stay confirmed")
	}
	// Offer 5 wraps: the first T is evicted, window T,T,F,F = 2 < k.
	if f.Offer(false) {
		t.Fatal("offer 5: eviction should drop the count below k")
	}
	// Offer 6 evicts another T: T,F,F,T = 2 < k.
	if f.Offer(true) {
		t.Fatal("offer 6: still only 2 of last 4")
	}
}

// TestFilterDuplicateTickOffers documents the contract that the filter
// has no notion of time: two Offer calls are two independent votes, so
// the caller must offer exactly once per sampling tick or k-of-w
// becomes k-of-(w/duplicates).
func TestFilterDuplicateTickOffers(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A single tick's alert offered three times confirms immediately —
	// exactly the transient-suppression bypass the per-tick contract
	// exists to prevent.
	f.Offer(true)
	f.Offer(true)
	if !f.Offer(true) {
		t.Fatal("three duplicate offers should count as three votes")
	}
}

// TestFilterResetDropsStaleSlots guards the Reset implementation
// detail: Reset rewinds n and next but leaves ring contents in place,
// so the count must only ever scan the live prefix ring[:n]. A stale
// slot beyond n leaking into the vote would re-confirm instantly after
// a prevention action.
func TestFilterResetDropsStaleSlots(t *testing.T) {
	f, err := NewAlarmFilter(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f.Offer(true) // saturate the ring with alert votes
	}
	f.Reset()
	// Post-reset, two fresh alerts must NOT confirm even though the
	// ring's stale slots still physically hold true values.
	if f.Offer(true) {
		t.Fatal("first post-reset offer confirmed: stale ring slot counted")
	}
	if f.Offer(true) {
		t.Fatal("second post-reset offer confirmed: stale ring slot counted")
	}
	if !f.Offer(true) {
		t.Fatal("third post-reset alert should confirm (k=3 fresh votes)")
	}
}
