package predict

import (
	"math"
	"math/rand"
	"testing"

	"prepare/internal/metrics"
)

// leakTrace synthesizes a trace resembling a memory-leak manifestation:
// column 0 (think free_mem) declines linearly into the anomaly while
// column 1 is noise. Labels flip to abnormal once column 0 drops below
// the threshold.
func leakTrace(n int, seed int64) ([][]float64, []metrics.Label) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	labels := make([]metrics.Label, n)
	for i := 0; i < n; i++ {
		free := 1000 - float64(i)*(1000/float64(n))
		free *= 1 + 0.02*rng.NormFloat64()
		noise := 50 + 10*rng.NormFloat64()
		rows[i] = []float64{free, noise}
		if free < 250 {
			labels[i] = metrics.LabelAbnormal
		} else {
			labels[i] = metrics.LabelNormal
		}
	}
	return rows, labels
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := New(Config{Order: 7}, []string{"a"}); err == nil {
		t.Error("bad markov order should fail")
	}
}

func TestDefaults(t *testing.T) {
	p, err := New(Config{}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.Bins != 8 || cfg.Order != TwoDependent || cfg.SamplingIntervalS != 5 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestTrainValidation(t *testing.T) {
	p, err := New(Config{}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(nil, nil); err == nil {
		t.Error("empty training should fail")
	}
	if err := p.Train([][]float64{{1, 2}}, nil); err == nil {
		t.Error("label mismatch should fail")
	}
	if err := p.Train([][]float64{{1}}, []metrics.Label{metrics.LabelNormal}); err == nil {
		t.Error("row width mismatch should fail")
	}
	if err := p.Train([][]float64{{1, 2}}, []metrics.Label{metrics.LabelUnknown}); err == nil {
		t.Error("all-unknown labels should fail")
	}
}

func TestUntrainedErrors(t *testing.T) {
	p, err := New(Config{}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe([]float64{1}); err != ErrNotTrained {
		t.Errorf("Observe untrained = %v, want ErrNotTrained", err)
	}
	if _, err := p.Predict(1); err != ErrNotTrained {
		t.Errorf("Predict untrained = %v, want ErrNotTrained", err)
	}
	if _, err := p.ClassifyCurrent([]float64{1}); err != ErrNotTrained {
		t.Errorf("ClassifyCurrent untrained = %v, want ErrNotTrained", err)
	}
}

func TestPredictsLeakAnomalyInAdvance(t *testing.T) {
	rows, labels := leakTrace(200, 1)
	p, err := New(Config{Bins: 10}, []string{"free_mem", "noise"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatalf("Train: %v", err)
	}

	// Replay a second leak: feed fresh declining samples and look for an
	// alert before the value actually crosses the threshold.
	testRows, testLabels := leakTrace(200, 2)
	alertAt := -1
	violationAt := -1
	for i, row := range testRows {
		if err := p.Observe(row); err != nil {
			t.Fatal(err)
		}
		if violationAt < 0 && testLabels[i] == metrics.LabelAbnormal {
			violationAt = i
		}
		if alertAt >= 0 {
			continue
		}
		v, err := p.Predict(4)
		if err != nil {
			t.Fatal(err)
		}
		if v.Abnormal {
			alertAt = i
		}
	}
	if alertAt < 0 {
		t.Fatal("predictor never raised an alert on a leak replay")
	}
	if violationAt < 0 {
		t.Fatal("test trace has no violation")
	}
	if alertAt >= violationAt {
		t.Errorf("alert at %d not before violation at %d", alertAt, violationAt)
	}
	// Lead time should be meaningful but not absurd.
	if violationAt-alertAt > 120 {
		t.Errorf("alert absurdly early: lead = %d samples", violationAt-alertAt)
	}
}

func TestStrengthsRankLeakAttribute(t *testing.T) {
	rows, labels := leakTrace(200, 3)
	p, err := New(Config{Bins: 10}, []string{"free_mem", "noise"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	// Drive the chains near the anomaly region and predict.
	testRows, _ := leakTrace(200, 4)
	for _, row := range testRows[:170] {
		if err := p.Observe(row); err != nil {
			t.Fatal(err)
		}
	}
	v, err := p.Predict(4)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Abnormal {
		t.Fatal("expected abnormal prediction near the anomaly")
	}
	if len(v.Strengths) != 2 {
		t.Fatalf("strengths = %v", v.Strengths)
	}
	if v.Strengths[0].Attribute != 0 {
		t.Errorf("top-ranked attribute = %d, want 0 (free_mem)", v.Strengths[0].Attribute)
	}
}

func TestClassifyCurrent(t *testing.T) {
	rows, labels := leakTrace(200, 5)
	p, err := New(Config{Bins: 10}, []string{"free_mem", "noise"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	abnormal, err := p.ClassifyCurrent([]float64{100, 50}) // deep in anomaly
	if err != nil {
		t.Fatal(err)
	}
	if !abnormal {
		t.Error("low free_mem should classify abnormal")
	}
	normal, err := p.ClassifyCurrent([]float64{900, 50})
	if err != nil {
		t.Fatal(err)
	}
	if normal {
		t.Error("high free_mem should classify normal")
	}
}

func TestStepsFor(t *testing.T) {
	p, err := New(Config{SamplingIntervalS: 5}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		lookahead int64
		want      int
	}{
		{0, 1}, {1, 1}, {5, 1}, {6, 2}, {10, 2}, {45, 9}, {120, 24},
	}
	for _, tt := range tests {
		if got := p.StepsFor(tt.lookahead); got != tt.want {
			t.Errorf("StepsFor(%d) = %d, want %d", tt.lookahead, got, tt.want)
		}
	}
}

func TestVerdictScoreSignConsistency(t *testing.T) {
	rows, labels := leakTrace(150, 6)
	p, err := New(Config{}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	for steps := 1; steps <= 6; steps++ {
		v, err := p.Predict(steps)
		if err != nil {
			t.Fatal(err)
		}
		if v.Abnormal != (v.Score > 0) {
			t.Errorf("steps %d: Abnormal=%v but Score=%g", steps, v.Abnormal, v.Score)
		}
		if len(v.FutureBins) != 2 {
			t.Errorf("steps %d: future bins = %v", steps, v.FutureBins)
		}
		for _, b := range v.FutureBins {
			if b < 0 || b >= p.Config().Bins {
				t.Errorf("future bin %d out of range", b)
			}
		}
	}
}

func TestSimpleOrderWorks(t *testing.T) {
	rows, labels := leakTrace(150, 7)
	p, err := New(Config{Order: SimpleMarkov}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict(3); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveClassifierWorks(t *testing.T) {
	rows, labels := leakTrace(150, 8)
	p, err := New(Config{Naive: true}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	abnormal, err := p.ClassifyCurrent([]float64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !abnormal {
		t.Error("naive classifier should also catch the anomaly")
	}
}

func TestObserveShape(t *testing.T) {
	rows, labels := leakTrace(100, 9)
	p, err := New(Config{}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe([]float64{1}); err == nil {
		t.Error("wrong-width observe should fail")
	}
}

func TestPredictorDeterministic(t *testing.T) {
	mk := func() Verdict {
		rows, labels := leakTrace(150, 10)
		p, err := New(Config{}, []string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Train(rows, labels); err != nil {
			t.Fatal(err)
		}
		v, err := p.Predict(4)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := mk(), mk()
	if a.Abnormal != b.Abnormal || math.Abs(a.Score-b.Score) > 1e-12 {
		t.Error("identical training should give identical verdicts")
	}
}
