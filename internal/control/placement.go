package control

import (
	"errors"
	"fmt"

	"prepare/internal/metrics"
	"prepare/internal/placement"
	"prepare/internal/predict"
	"prepare/internal/prevent"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
	"prepare/internal/telemetry"
)

// PlacementMode selects how migration targets are chosen.
type PlacementMode int

// The placement modes.
const (
	// PlacementNaive delegates target selection to the substrate (the
	// simulator's first-fit), exactly as before predictive placement
	// existed. This is the zero value.
	PlacementNaive PlacementMode = iota
	// PlacementPredictive scores candidate hosts by their forecast
	// future load through the placement engine and actuates migrations
	// with an explicit target, falling back to naive selection whenever
	// the engine has no answer.
	PlacementPredictive
)

// String names the mode as accepted by PlacementModeByName.
func (m PlacementMode) String() string {
	switch m {
	case PlacementNaive:
		return "naive"
	case PlacementPredictive:
		return "predictive"
	default:
		return fmt.Sprintf("PlacementMode(%d)", int(m))
	}
}

// PlacementModeByName parses the CLI spelling of a placement mode.
func PlacementModeByName(name string) (PlacementMode, error) {
	switch name {
	case "", "naive":
		return PlacementNaive, nil
	case "predictive":
		return PlacementPredictive, nil
	default:
		return 0, fmt.Errorf("control: unknown placement mode %q (want naive or predictive)", name)
	}
}

// engineSelector adapts the placement engine to prevent's TargetSelector
// contract: every migration attempt (including backed-off retries)
// re-scores candidates against the live inventory, and outcomes feed the
// placement.* counters.
type engineSelector struct {
	engine   *placement.Engine
	inv      *placement.Inventory
	targeted substrate.TargetedActuator

	requests  *telemetry.Counter
	decisions *telemetry.Counter
	successes *telemetry.Counter
	fallbacks *telemetry.Counter
	retries   *telemetry.Counter
}

// newEngineSelector builds the predictive selector over the substrate,
// verifying it supports both halves of the contract (a placement
// inventory to score against and explicit-target migration to actuate
// the choice).
func newEngineSelector(sub substrate.Substrate, cfg Config) (*engineSelector, *placement.Inventory, error) {
	prov, okInv := sub.(placement.InventoryProvider)
	targeted, okMig := sub.(substrate.TargetedActuator)
	if !okInv || !okMig {
		return nil, nil, errors.New("predictive placement requires a substrate with a placement inventory and explicit-target migration")
	}
	inv := prov.PlacementInventory()
	if inv == nil {
		return nil, nil, errors.New("substrate returned no placement inventory")
	}
	engine, err := placement.NewEngine(inv, placement.Config{
		PreemptionDepth: cfg.PlacementPreemptionDepth,
		Telemetry:       cfg.Telemetry,
	})
	if err != nil {
		return nil, nil, err
	}
	reg := cfg.Telemetry
	return &engineSelector{
		engine:    engine,
		inv:       inv,
		targeted:  targeted,
		requests:  reg.Counter("placement.requests"),
		decisions: reg.Counter("placement.decisions"),
		successes: reg.Counter("placement.successes"),
		fallbacks: reg.Counter("placement.fallbacks"),
		retries:   reg.Counter("placement.retries"),
	}, inv, nil
}

var _ prevent.TargetSelector = (*engineSelector)(nil)

// SelectTarget answers one migration attempt. A damaged inventory or an
// infeasible request yields no answer (naive fallback). A preemption
// plan cannot be granted synchronously — live migrations only free
// capacity when they complete — so the victim evictions are started and
// this attempt falls back; a later attempt (or episode) finds the
// cleared target directly.
func (s *engineSelector) SelectTarget(now simclock.Time, id substrate.VMID, desiredCPUPct, desiredMemMB float64) (substrate.HostID, bool) {
	s.requests.Inc()
	src, _ := s.inv.HostOf(id)
	dec, err := s.engine.Decide(placement.Request{
		VM:     id,
		CPUPct: desiredCPUPct,
		MemMB:  desiredMemMB,
		Source: src,
	})
	if err != nil {
		return "", false
	}
	if len(dec.Preempted) > 0 {
		for _, m := range dec.Preempted {
			if err := s.targeted.MigrateTo(now, m.VM, m.To, m.CPUPct, m.MemMB); err != nil {
				break
			}
		}
		return "", false
	}
	return dec.Target, true
}

// ReportOutcome records what the planner did with the selected target.
// Invariants: requests == successes + fallbacks + retries, and
// decisions == successes + fallbacks (retries re-enter SelectTarget).
func (s *engineSelector) ReportOutcome(_ substrate.VMID, o prevent.SelectionOutcome) {
	switch o {
	case prevent.OutcomeSuccess:
		s.successes.Inc()
		s.decisions.Inc()
	case prevent.OutcomeFallback:
		s.fallbacks.Inc()
		s.decisions.Inc()
	case prevent.OutcomeRetry:
		s.retries.Inc()
	}
}

// pushForecasts refreshes the inventory's per-VM CPU forecasts from the
// trained value predictors: the predicted peak CPU utilization over the
// look-ahead window, converted from percent-of-allocation to absolute
// percentage points via the VM's current allocation. VMs whose detector
// exposes no TAN predictor (unsupervised, ensembles) keep the
// inventory's allocation-pessimistic default.
func (c *Controller) pushForecasts() {
	if c.placeInv == nil || c.scheme != SchemePREPARE || c.placeInv.Damaged() != nil {
		return
	}
	col := metrics.CPUTotal.Index()
	for _, id := range c.vmOrder {
		p, ok := predict.TANPredictor(c.detectors[id])
		if !ok {
			continue
		}
		utilPct, ok := p.ForecastValueMax(col, c.cfg.LookaheadS)
		if !ok {
			continue
		}
		allocCPU, _, ok := c.placeInv.VMAlloc(id)
		if !ok {
			continue
		}
		_ = c.placeInv.SetForecast(id, utilPct/100*allocCPU)
	}
}
