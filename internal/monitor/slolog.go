// Package monitor implements PREPARE's VM monitoring module: out-of-band
// collection of 13 system-level attributes per VM (the simulated analogue
// of domain-0 libxenstat plus the in-guest memory daemon), an SLO
// violation log fed by the external SLO tracker, and automatic runtime
// data labeling that matches metric timestamps against that log.
package monitor

import (
	"fmt"
	"sort"

	"prepare/internal/metrics"
	"prepare/internal/simclock"
)

// SLORecord is one observation of the application's SLO state.
type SLORecord struct {
	Time     simclock.Time
	Violated bool
}

// SLOLog records the application's SLO state over time. Records must be
// appended in non-decreasing time order. The zero value is ready to use.
type SLOLog struct {
	records []SLORecord
}

// Record appends an SLO observation. Out-of-order records are rejected.
func (l *SLOLog) Record(now simclock.Time, violated bool) error {
	if n := len(l.records); n > 0 && now.Before(l.records[n-1].Time) {
		return fmt.Errorf("monitor: SLO record at %v after %v", now, l.records[n-1].Time)
	}
	l.records = append(l.records, SLORecord{Time: now, Violated: violated})
	return nil
}

// Len returns the number of records.
func (l *SLOLog) Len() int { return len(l.records) }

// End returns the time of the latest record (zero when empty).
func (l *SLOLog) End() simclock.Time {
	if len(l.records) == 0 {
		return 0
	}
	return l.records[len(l.records)-1].Time
}

// ViolatedAt reports the SLO state at time t, using the most recent
// record at or before t. Times before the first record report false.
func (l *SLOLog) ViolatedAt(t simclock.Time) bool {
	idx := sort.Search(len(l.records), func(i int) bool {
		return l.records[i].Time.After(t)
	})
	if idx == 0 {
		return false
	}
	return l.records[idx-1].Violated
}

// Label converts the SLO state at t into a sample label, implementing the
// paper's automatic runtime data labeling.
func (l *SLOLog) Label(t simclock.Time) metrics.Label {
	if len(l.records) == 0 {
		return metrics.LabelUnknown
	}
	if l.ViolatedAt(t) {
		return metrics.LabelAbnormal
	}
	return metrics.LabelNormal
}

// ViolationSeconds returns the total number of seconds in [from, to)
// during which the SLO was violated — the paper's headline "SLO violation
// time" measure.
func (l *SLOLog) ViolationSeconds(from, to simclock.Time) int64 {
	total := int64(0)
	for t := from; t.Before(to); t = t.Add(1) {
		if l.ViolatedAt(t) {
			total++
		}
	}
	return total
}

// Violations returns the violated intervals within [from, to) as
// [start, end) pairs, for trace plotting and diagnostics.
func (l *SLOLog) Violations(from, to simclock.Time) [][2]simclock.Time {
	var out [][2]simclock.Time
	inViolation := false
	var start simclock.Time
	for t := from; t.Before(to); t = t.Add(1) {
		v := l.ViolatedAt(t)
		switch {
		case v && !inViolation:
			inViolation = true
			start = t
		case !v && inViolation:
			inViolation = false
			out = append(out, [2]simclock.Time{start, t})
		}
	}
	if inViolation {
		out = append(out, [2]simclock.Time{start, to})
	}
	return out
}
