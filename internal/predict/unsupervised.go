package predict

import (
	"fmt"
	"sort"

	"prepare/internal/bayes"
	"prepare/internal/markov"
	"prepare/internal/metrics"
	"prepare/internal/unsupervised"
)

// UnsupervisedPredictor combines the same per-attribute Markov value
// prediction as the supervised Predictor with an unsupervised outlier
// detector in place of the TAN classifier — the extension Section V of
// the paper proposes for anomalies the system has never seen before.
// It trains on unlabeled data (presumed mostly normal) and raises an
// alert when the predicted future state is an outlier with respect to
// the learned normal operating modes.
type UnsupervisedPredictor struct {
	cfg      Config
	names    []string
	disc     []metrics.Discretizer
	chains   []markov.Predictor
	detector unsupervised.Detector
	kind     UnsupervisedKind
	lastRow  []float64
	trained  bool

	// ins is the (possibly zero/disabled) telemetry wiring.
	ins Instruments
}

// UnsupervisedKind selects the outlier detector.
type UnsupervisedKind int

// The available detectors.
const (
	// KMeansDetector clusters normal states and scores distance to the
	// nearest centroid.
	KMeansDetector UnsupervisedKind = iota + 1
	// ZScoreDetector scores per-attribute robust deviations.
	ZScoreDetector
)

// NewUnsupervised builds an untrained unsupervised predictor.
func NewUnsupervised(cfg Config, names []string) (*UnsupervisedPredictor, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("predict: at least one column is required")
	}
	cfg = cfg.withDefaults()
	if cfg.Order != SimpleMarkov && cfg.Order != TwoDependent {
		return nil, fmt.Errorf("predict: unsupported markov order %d", cfg.Order)
	}
	cp := make([]string, len(names))
	copy(cp, names)
	return &UnsupervisedPredictor{cfg: cfg, names: cp}, nil
}

// Trained reports whether Train has succeeded.
func (p *UnsupervisedPredictor) Trained() bool { return p.trained }

// Train fits the discretizers, value predictors and the outlier detector
// from UNLABELED rows (presumed to be mostly normal operation). seed
// drives the detector's initialization; kind selects the detector.
func (p *UnsupervisedPredictor) Train(rows [][]float64, kind UnsupervisedKind, seed int64) error {
	if len(rows) == 0 {
		return ErrNoData
	}
	nCols := len(p.names)
	for i, r := range rows {
		if len(r) != nCols {
			return fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), nCols)
		}
	}

	disc := make([]metrics.Discretizer, nCols)
	for j := 0; j < nCols; j++ {
		col := make([]float64, len(rows))
		for i := range rows {
			col[i] = rows[i][j]
		}
		d, err := metrics.NewEqualWidth(col, p.cfg.Bins)
		if err != nil {
			return fmt.Errorf("predict: fit discretizer for %s: %w", p.names[j], err)
		}
		disc[j] = d
	}

	chains := make([]markov.Predictor, nCols)
	for j := 0; j < nCols; j++ {
		var (
			ch  markov.Predictor
			err error
		)
		if p.cfg.Order == SimpleMarkov {
			ch, err = markov.NewSimpleChain(p.cfg.Bins)
		} else {
			ch, err = markov.NewTwoDepChain(p.cfg.Bins)
		}
		if err != nil {
			return fmt.Errorf("predict: new chain: %w", err)
		}
		chains[j] = ch
	}
	for _, row := range rows {
		for j, v := range row {
			if err := chains[j].Observe(disc[j].Bin(v)); err != nil {
				return fmt.Errorf("predict: observe: %w", err)
			}
		}
	}

	var (
		det unsupervised.Detector
		err error
	)
	switch kind {
	case ZScoreDetector:
		det, err = unsupervised.TrainZScore(rows, unsupervised.ZScoreOptions{})
	case KMeansDetector, 0:
		det, err = unsupervised.TrainKMeans(rows, unsupervised.KMeansOptions{Seed: seed})
	default:
		return fmt.Errorf("predict: unknown detector kind %d", kind)
	}
	if err != nil {
		return fmt.Errorf("predict: train detector: %w", err)
	}

	p.disc = disc
	p.chains = chains
	p.detector = det
	if kind == 0 {
		kind = KMeansDetector
	}
	p.kind = kind
	p.trained = true
	return nil
}

// Kind returns the detector kind Train was called with.
func (p *UnsupervisedPredictor) Kind() UnsupervisedKind { return p.kind }

// Observe feeds a new runtime row to the value predictors.
func (p *UnsupervisedPredictor) Observe(row []float64) error {
	if !p.trained {
		return ErrNotTrained
	}
	if len(row) != len(p.names) {
		return fmt.Errorf("%w: row has %d columns, want %d", ErrShape, len(row), len(p.names))
	}
	for j, v := range row {
		if err := p.chains[j].Observe(p.disc[j].Bin(v)); err != nil {
			return fmt.Errorf("predict: observe: %w", err)
		}
	}
	p.lastRow = append(p.lastRow[:0], row...)
	return nil
}

// UnsupervisedVerdict is an unsupervised anomaly prediction outcome.
type UnsupervisedVerdict struct {
	// Abnormal is true when the predicted state is an outlier.
	Abnormal bool
	// Score is the detector's anomaly score of the predicted state.
	Score float64
	// FutureBins holds the most likely predicted bin per column.
	FutureBins []int
	// FutureValues holds the predicted (bin-center) value per column —
	// the row the detector actually scored.
	FutureValues []float64
}

// Predict reconstructs the most likely predicted value per attribute the
// given number of steps ahead and scores it with the outlier detector.
func (p *UnsupervisedPredictor) Predict(steps int) (UnsupervisedVerdict, error) {
	if !p.trained {
		return UnsupervisedVerdict{}, ErrNotTrained
	}
	bins := make([]int, len(p.names))
	values := make([]float64, len(p.names))
	for j, ch := range p.chains {
		bins[j] = markov.ArgMax(ch.Predict(steps))
		values[j] = p.disc[j].Center(bins[j])
	}
	score, err := p.scoreWithCurrent(values)
	if err != nil {
		return UnsupervisedVerdict{}, err
	}
	return UnsupervisedVerdict{
		Abnormal:     score > p.detector.Threshold(),
		Score:        score,
		FutureBins:   bins,
		FutureValues: values,
	}, nil
}

// scoreWithCurrent scores the predicted state and, when a current
// observation is available, takes the maximum with the current state's
// score. Discretized value prediction can only extrapolate within the
// training value envelope (bin centers clamp), so truly unseen extremes
// manifest in the observed row first; covering both keeps the detector
// sensitive to them while the predicted-state term adds lead time for
// drifts inside the envelope.
func (p *UnsupervisedPredictor) scoreWithCurrent(predicted []float64) (float64, error) {
	score, err := p.detector.Score(predicted)
	if err != nil {
		return 0, fmt.Errorf("predict: score future state: %w", err)
	}
	if p.lastRow != nil {
		cur, err := p.detector.Score(p.lastRow)
		if err != nil {
			return 0, fmt.Errorf("predict: score current state: %w", err)
		}
		if cur > score {
			score = cur
		}
	}
	return score, nil
}

// PredictWindow alerts if the predicted state is an outlier at ANY step
// within the look-ahead window, returning the maximum-scoring verdict.
func (p *UnsupervisedPredictor) PredictWindow(lookaheadS int64) (UnsupervisedVerdict, error) {
	if !p.trained {
		return UnsupervisedVerdict{}, ErrNotTrained
	}
	tStart := p.ins.windowStart()
	defer p.ins.windowDone(tStart)
	steps := int((lookaheadS + p.cfg.SamplingIntervalS - 1) / p.cfg.SamplingIntervalS)
	if steps < 1 {
		steps = 1
	}
	series := make([][][]float64, len(p.names))
	for j, ch := range p.chains {
		series[j] = ch.PredictSeries(steps)
	}
	var best UnsupervisedVerdict
	values := make([]float64, len(p.names))
	bins := make([]int, len(p.names))
	for s := 0; s < steps; s++ {
		for j := range p.names {
			bins[j] = markov.ArgMax(series[j][s])
			values[j] = p.disc[j].Center(bins[j])
		}
		score, err := p.scoreWithCurrent(values)
		if err != nil {
			return UnsupervisedVerdict{}, err
		}
		if s == 0 || score > best.Score {
			best = UnsupervisedVerdict{
				Abnormal:     score > p.detector.Threshold(),
				Score:        score,
				FutureBins:   append([]int(nil), bins...),
				FutureValues: append([]float64(nil), values...),
			}
		}
	}
	return best, nil
}

// Attribution ranks the attributes by their contribution to the row's
// anomaly score, in the same Strength form the supervised TAN produces,
// so the cause-inference and prevention modules work unchanged in
// unsupervised mode.
func (p *UnsupervisedPredictor) Attribution(row []float64) ([]bayes.Strength, error) {
	if !p.trained {
		return nil, ErrNotTrained
	}
	contributions, err := p.detector.Contributions(row)
	if err != nil {
		return nil, fmt.Errorf("predict: attribution: %w", err)
	}
	out := make([]bayes.Strength, len(contributions))
	for j, c := range contributions {
		out[j] = bayes.Strength{Attribute: j, L: c}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].L > out[b].L })
	return out, nil
}
