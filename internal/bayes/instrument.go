package bayes

import "prepare/internal/telemetry"

// Package-level timing hooks, installed by the experiment wiring when
// telemetry is enabled. Uninstalled (the default) they cost one atomic
// load and branch per call, keeping the scratch-path scoring
// allocation-free (see the bayes benchmarks).
var (
	// scoreHook times the Equation (1) scoring passes (MarginalScore and
	// ScoreMarginalsScratch), the TAN classifier's hot path.
	scoreHook telemetry.Hook
	// trainHook times Train (tree construction + CPT estimation).
	trainHook telemetry.Hook
)

// SetScoreHistogram installs (or, with nil, removes) the histogram
// receiving classifier scoring wall-clock timings.
func SetScoreHistogram(h *telemetry.Histogram) { scoreHook.Set(h) }

// SetTrainHistogram installs (or, with nil, removes) the histogram
// receiving Train wall-clock timings.
func SetTrainHistogram(h *telemetry.Histogram) { trainHook.Set(h) }
