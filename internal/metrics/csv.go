package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"prepare/internal/simclock"
)

// WriteSamplesCSV writes samples as CSV with a header of
// "time_s,<13 attribute names...>,label".
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, NumAttributes+2)
	header = append(header, "time_s")
	for _, a := range AllAttributes() {
		header = append(header, a.String())
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: write header: %w", err)
	}
	for _, sm := range samples {
		row := make([]string, 0, NumAttributes+2)
		row = append(row, strconv.FormatInt(sm.Time.Seconds(), 10))
		for _, a := range AllAttributes() {
			row = append(row, strconv.FormatFloat(sm.Values.Get(a), 'f', 4, 64))
		}
		row = append(row, sm.Label.String())
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSamplesCSV parses samples written by WriteSamplesCSV.
func ReadSamplesCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	wantCols := NumAttributes + 2
	if len(records[0]) != wantCols {
		return nil, fmt.Errorf("metrics: header has %d columns, want %d", len(records[0]), wantCols)
	}
	samples := make([]Sample, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != wantCols {
			return nil, fmt.Errorf("metrics: row %d has %d columns, want %d", i+2, len(rec), wantCols)
		}
		sec, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: row %d time: %w", i+2, err)
		}
		sm := Sample{Time: simclock.Time(sec)}
		for j, a := range AllAttributes() {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: row %d %s: %w", i+2, a, err)
			}
			sm.Values.Set(a, v)
		}
		label, err := parseLabel(rec[wantCols-1])
		if err != nil {
			return nil, fmt.Errorf("metrics: row %d: %w", i+2, err)
		}
		sm.Label = label
		samples = append(samples, sm)
	}
	return samples, nil
}

func parseLabel(s string) (Label, error) {
	switch s {
	case "normal":
		return LabelNormal, nil
	case "abnormal":
		return LabelAbnormal, nil
	case "unknown", "":
		return LabelUnknown, nil
	default:
		return 0, fmt.Errorf("unknown label %q", s)
	}
}
