package monitor

import (
	"fmt"
	"math/rand"
	"sort"

	"prepare/internal/cloudsim"
	"prepare/internal/metrics"
	"prepare/internal/simclock"
	"prepare/internal/telemetry"
)

// DefaultSamplingInterval is the paper's metric sampling interval (5 s).
const DefaultSamplingInterval = int64(5)

// Sampler collects the 13 system-level attributes of each monitored VM
// from the cluster, adds measurement noise, derives load averages, and
// appends labeled samples to per-VM series.
type Sampler struct {
	cluster  *cloudsim.Cluster
	vmIDs    []cloudsim.VMID
	rng      *rand.Rand
	noiseStd float64

	load1  map[cloudsim.VMID]float64
	load5  map[cloudsim.VMID]float64
	series map[cloudsim.VMID]*metrics.Series

	// ingested counts appended samples; nil (disabled telemetry) no-ops.
	ingested *telemetry.Counter
}

// Config parameterizes the sampler.
type Config struct {
	// NoiseStd is the relative standard deviation of measurement noise
	// applied to each attribute (default 0.03 when zero).
	NoiseStd float64
	// Seed drives the noise generator.
	Seed int64
	// Telemetry receives monitoring counters (nil disables, at zero
	// cost on the sampling path).
	Telemetry *telemetry.Registry
}

// NewSampler monitors the given VMs on the cluster.
func NewSampler(cluster *cloudsim.Cluster, vmIDs []cloudsim.VMID, cfg Config) (*Sampler, error) {
	if cluster == nil {
		return nil, fmt.Errorf("monitor: cluster is required")
	}
	if len(vmIDs) == 0 {
		return nil, fmt.Errorf("monitor: at least one VM is required")
	}
	for _, id := range vmIDs {
		if _, err := cluster.VM(id); err != nil {
			return nil, fmt.Errorf("monitor: %w", err)
		}
	}
	noise := cfg.NoiseStd
	if noise == 0 {
		noise = 0.03
	}
	ids := make([]cloudsim.VMID, len(vmIDs))
	copy(ids, vmIDs)
	s := &Sampler{
		cluster:  cluster,
		vmIDs:    ids,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		noiseStd: noise,
		load1:    make(map[cloudsim.VMID]float64, len(ids)),
		load5:    make(map[cloudsim.VMID]float64, len(ids)),
		series:   make(map[cloudsim.VMID]*metrics.Series, len(ids)),
		ingested: cfg.Telemetry.Counter("monitor.samples.ingested"),
	}
	for _, id := range ids {
		s.series[id] = metrics.NewSeries(512)
	}
	return s, nil
}

// VMIDs returns the monitored VM IDs.
func (s *Sampler) VMIDs() []cloudsim.VMID {
	out := make([]cloudsim.VMID, len(s.vmIDs))
	copy(out, s.vmIDs)
	return out
}

// Series returns the sample series of a VM.
func (s *Sampler) Series(id cloudsim.VMID) (*metrics.Series, error) {
	sr, ok := s.series[id]
	if !ok {
		return nil, fmt.Errorf("monitor: VM %q is not monitored", id)
	}
	return sr, nil
}

// UpdateLoad advances the load-average EMAs; call once per simulated
// second (load averages integrate faster than the sampling interval).
func (s *Sampler) UpdateLoad() {
	const (
		alpha1 = 0.28 // ~1-minute EMA at 1 s ticks, compressed timescale
		alpha5 = 0.08
	)
	for _, id := range s.vmIDs {
		vm, err := s.cluster.VM(id)
		if err != nil {
			continue
		}
		inst := 0.0
		if vm.CPUAllocation > 0 {
			inst = vm.CPUDemand / vm.CPUAllocation
		}
		s.load1[id] = alpha1*inst + (1-alpha1)*s.load1[id]
		s.load5[id] = alpha5*inst + (1-alpha5)*s.load5[id]
	}
}

// Collect samples every monitored VM at the given instant, labels the
// samples with the current SLO state, and appends them to the per-VM
// series. The labeled samples are returned keyed by VM.
func (s *Sampler) Collect(now simclock.Time, label metrics.Label) (map[cloudsim.VMID]metrics.Sample, error) {
	out := make(map[cloudsim.VMID]metrics.Sample, len(s.vmIDs))
	for _, id := range s.vmIDs {
		vm, err := s.cluster.VM(id)
		if err != nil {
			return nil, fmt.Errorf("monitor: collect %q: %w", id, err)
		}
		sample := s.sampleVM(vm, now, label)
		if err := s.series[id].Append(sample); err != nil {
			return nil, fmt.Errorf("monitor: append %q: %w", id, err)
		}
		out[id] = sample
	}
	s.ingested.Add(int64(len(s.vmIDs)))
	return out, nil
}

// sampleVM derives the 13 attributes from simulator state with noise.
func (s *Sampler) sampleVM(vm *cloudsim.VM, now simclock.Time, label metrics.Label) metrics.Sample {
	util := 0.0
	if vm.CPUAllocation > 0 {
		util = 100 * vm.CPUUsage / vm.CPUAllocation
	}
	pressure := vm.MemPressure()

	var v metrics.Vector
	v.Set(metrics.CPUTotal, s.noisy(util))
	v.Set(metrics.CPUUser, s.noisy(util*0.72))
	v.Set(metrics.CPUSystem, s.noisy(util*0.28))
	v.Set(metrics.FreeMem, s.noisy(vm.FreeMemMB()))
	v.Set(metrics.MemUsed, s.noisy(vm.WorkingSetMB+vm.LeakedMB))
	v.Set(metrics.NetIn, s.noisy(vm.NetInKBps))
	v.Set(metrics.NetOut, s.noisy(vm.NetOutKBps))
	v.Set(metrics.DiskRead, s.noisy(vm.DiskReadKBps))
	v.Set(metrics.DiskWrite, s.noisy(vm.DiskWriteKBs))
	v.Set(metrics.Load1, s.noisy(s.load1[vm.ID]))
	v.Set(metrics.Load5, s.noisy(s.load5[vm.ID]))
	v.Set(metrics.CtxSwitch, s.noisy(400+35*vm.CPUUsage))
	v.Set(metrics.PageFaults, s.noisy(40+450*(pressure-1)))
	return metrics.Sample{Time: now, Values: v, Label: label}
}

func (s *Sampler) noisy(value float64) float64 {
	v := value * (1 + s.rng.NormFloat64()*s.noiseStd)
	if v < 0 {
		v = 0
	}
	return v
}

// Dataset bundles each VM's labeled series for offline (trace-driven)
// experiments, sorted by VM ID for determinism.
func (s *Sampler) Dataset() map[cloudsim.VMID][]metrics.Sample {
	out := make(map[cloudsim.VMID][]metrics.Sample, len(s.series))
	ids := make([]string, 0, len(s.series))
	for id := range s.series {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		out[cloudsim.VMID(id)] = s.series[cloudsim.VMID(id)].All()
	}
	return out
}
