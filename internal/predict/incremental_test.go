package predict

import (
	"bytes"
	"reflect"
	"testing"

	"prepare/internal/bayes"
	"prepare/internal/metrics"
	"prepare/internal/simclock"
)

// frozenBatchModel rebuilds the classifier the way a batch refit over
// the full history would, holding the discretizers and the relabel
// baseline frozen at their initial-training state — which is exactly
// the equivalence incremental training promises: same gate, same
// backward extension, same minimum-support fold, same counts, same
// Chow-Liu tree and CPTs.
func frozenBatchModel(t *testing.T, p *Predictor, rows [][]float64, rawLabels []metrics.Label, lookback int) *bayes.Model {
	t.Helper()
	labels := append([]metrics.Label(nil), rawLabels...)
	if p.inc.base != nil {
		deviating := make([]bool, len(rows))
		for i, row := range rows {
			deviating[i] = p.inc.base.deviating(row)
		}
		gateAndExtend(labels, deviating, lookback)
		applyMinSupport(labels)
	}
	binsPerAttr := make([]int, len(p.names))
	for j := range binsPerAttr {
		binsPerAttr[j] = p.cfg.Bins
	}
	ct, err := bayes.NewCountTable(binsPerAttr)
	if err != nil {
		t.Fatal(err)
	}
	binned := make([]int, len(p.names))
	for i, row := range rows {
		if labels[i] == metrics.LabelUnknown {
			continue
		}
		for j, v := range row {
			binned[j] = p.disc[j].Bin(v)
		}
		if err := ct.Add(binned, labels[i] == metrics.LabelAbnormal); err != nil {
			t.Fatal(err)
		}
	}
	model, err := bayes.TrainFromCounts(ct, bayes.Options{Naive: p.cfg.Naive})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestTrainIncrementalMatchesBatchTrain: the initial incremental fit
// must be bit-identical to a plain batch Train on the same window — the
// sufficient statistics ride along without changing the model.
func TestTrainIncrementalMatchesBatchTrain(t *testing.T) {
	rows, labels := benchTrace(600, 3)
	const lookback = 24

	p, err := New(Config{}, AttributeNames())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrainIncremental(rows, labels, lookback); err != nil {
		t.Fatal(err)
	}
	if !p.Incremental() {
		t.Fatal("TrainIncremental left no incremental state")
	}

	q, err := New(Config{}, AttributeNames())
	if err != nil {
		t.Fatal(err)
	}
	batchLabels := append([]metrics.Label(nil), labels...)
	batchRows := make([][]float64, len(rows))
	copy(batchRows, rows)
	RelabelForTraining(batchRows, batchLabels, lookback)
	if err := q.Train(batchRows, batchLabels); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(p.model.Snapshot(), q.model.Snapshot()) {
		t.Fatal("initial incremental model differs from batch model")
	}
	// Chains and discretizers must match too: identically trained
	// predictors produce identical window verdicts.
	pv, err := p.PredictWindow(120)
	if err != nil {
		t.Fatal(err)
	}
	qv, err := q.PredictWindow(120)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pv, qv) {
		t.Fatalf("verdicts differ after identical training: %+v vs %+v", pv, qv)
	}
}

// TestRetrainMatchesFrozenBatch is the tentpole equivalence property:
// stream samples one Update at a time, Retrain at several checkpoints,
// and at every checkpoint the rebuilt classifier must equal — exactly,
// not approximately — what a batch refit over the full history with
// frozen discretizers/baseline would produce. Unknown labels, the
// deviation gate, onset backward extension, and the minimum-support
// fold are all exercised by the synthetic trace.
func TestRetrainMatchesFrozenBatch(t *testing.T) {
	rows, raw := benchTrace(1200, 42)
	// Punch unknown labels into the stream so the unlabeled path (chains
	// advance, classifier counts skip) is exercised.
	for i := 0; i < len(raw); i += 97 {
		raw[i] = metrics.LabelUnknown
	}
	const prefix, lookback = 400, 24

	p, err := New(Config{}, AttributeNames())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrainIncremental(rows[:prefix], raw[:prefix], lookback); err != nil {
		t.Fatal(err)
	}

	checkpoints := map[int]bool{500: true, 700: true, 900: true, 1200: true}
	for i := prefix; i < len(rows); i++ {
		if err := p.Update(rows[i], raw[i]); err != nil {
			t.Fatal(err)
		}
		if !checkpoints[i+1] {
			continue
		}
		if err := p.Retrain(); err != nil {
			t.Fatal(err)
		}
		want := frozenBatchModel(t, p, rows[:i+1], raw[:i+1], lookback)
		if !reflect.DeepEqual(p.model.Snapshot(), want.Snapshot()) {
			t.Fatalf("checkpoint %d: incremental model differs from frozen batch refit", i+1)
		}
	}
	if got := p.IncrementalUpdates(); got != uint64(len(rows)-prefix) {
		t.Errorf("IncrementalUpdates = %d, want %d", got, len(rows)-prefix)
	}
}

// TestIncrementalSaveLoadResumesIdentically: snapshotting an
// incrementally trained predictor mid-stream and restoring it must
// resume exactly — same verdicts on every subsequent tick, same model
// after the next retrain.
func TestIncrementalSaveLoadResumesIdentically(t *testing.T) {
	rows, raw := benchTrace(1000, 7)
	const prefix, lookback = 400, 24

	p, err := New(Config{}, AttributeNames())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrainIncremental(rows[:prefix], raw[:prefix], lookback); err != nil {
		t.Fatal(err)
	}
	for i := prefix; i < 700; i++ {
		if err := p.Update(rows[i], raw[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Retrain(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Incremental() {
		t.Fatal("restored predictor lost its incremental state")
	}
	if q.IncrementalUpdates() != p.IncrementalUpdates() {
		t.Fatalf("restored updates = %d, want %d", q.IncrementalUpdates(), p.IncrementalUpdates())
	}

	for i := 700; i < len(rows); i++ {
		if err := p.Update(rows[i], raw[i]); err != nil {
			t.Fatal(err)
		}
		if err := q.Update(rows[i], raw[i]); err != nil {
			t.Fatal(err)
		}
		pv, err := p.PredictWindow(120)
		if err != nil {
			t.Fatal(err)
		}
		qv, err := q.PredictWindow(120)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pv, qv) {
			t.Fatalf("step %d: restored predictor diverged: %+v vs %+v", i, pv, qv)
		}
		if i == 850 {
			if err := p.Retrain(); err != nil {
				t.Fatal(err)
			}
			if err := q.Retrain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(p.model.Snapshot(), q.model.Snapshot()) {
		t.Fatal("models diverged after resume")
	}
}

// TestUpdateRequiresIncrementalState: batch-trained predictors must
// reject the incremental entry points loudly rather than silently
// training nothing.
func TestUpdateRequiresIncrementalState(t *testing.T) {
	p, err := New(Config{}, AttributeNames())
	if err != nil {
		t.Fatal(err)
	}
	rows, labels := benchTrace(300, 9)
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	if err := p.Update(rows[0], labels[0]); err != ErrNotIncremental {
		t.Errorf("Update on batch predictor = %v, want ErrNotIncremental", err)
	}
	if err := p.Retrain(); err != ErrNotIncremental {
		t.Errorf("Retrain on batch predictor = %v, want ErrNotIncremental", err)
	}
	// A fresh batch Train over an incremental predictor discards the
	// statistics (they describe a window the new fit never saw).
	if err := p.TrainIncremental(rows, labels, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Train(rows, labels); err != nil {
		t.Fatal(err)
	}
	if p.Incremental() {
		t.Error("batch retrain kept stale incremental state")
	}
}

// TestUpdateAllocBudget pins the O(1) per-sample cost in allocations:
// after warm-up, folding one sample into the statistics must not
// allocate at all (ring slots and scratch buffers are recycled).
func TestUpdateAllocBudget(t *testing.T) {
	rows, raw := benchTrace(800, 13)
	p, err := New(Config{}, AttributeNames())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TrainIncremental(rows[:400], raw[:400], 24); err != nil {
		t.Fatal(err)
	}
	i := 400
	allocs := testing.AllocsPerRun(300, func() {
		if err := p.Update(rows[i%len(rows)], raw[i%len(rows)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 0 {
		t.Errorf("Update allocates %.1f/op, want 0", allocs)
	}
}

// TestRowsFromSamplesAllocBudget pins the shared-backing-array layout:
// converting a series must cost three allocations (row headers, labels,
// one backing array), not two plus one per sample.
func TestRowsFromSamplesAllocBudget(t *testing.T) {
	samples := make([]metrics.Sample, 1000)
	for i := range samples {
		samples[i].Time = simclock.Time(i)
		samples[i].Label = metrics.LabelNormal
	}
	allocs := testing.AllocsPerRun(50, func() {
		rows, labels := RowsFromSamples(samples)
		if len(rows) != len(samples) || len(labels) != len(samples) {
			t.Fatal("shape mismatch")
		}
	})
	if allocs > 3 {
		t.Errorf("RowsFromSamples allocates %.1f/op, budget 3", allocs)
	}
}
