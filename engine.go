package prepare

import (
	"io"

	"prepare/internal/control"
	"prepare/internal/experiment"
	"prepare/internal/replay"
	"prepare/internal/substrate"
)

// Multi-tenant engine types.
type (
	// Engine steps N independent per-tenant controllers, sharded by a
	// hash of the tenant ID and stepped concurrently over the bounded
	// worker pool. Per-tenant results are bit-identical for any shard or
	// worker count.
	Engine = control.Engine
	// Tenant is one independently managed application inside an Engine.
	Tenant = control.Tenant
	// TenantAlert is a confirmed alert tagged with its tenant.
	TenantAlert = control.TenantAlert
	// TenantStep is an executed prevention step tagged with its tenant.
	TenantStep = control.TenantStep
	// EngineStats is an engine's aggregate telemetry.
	EngineStats = control.EngineStats
	// TenantScenario names one tenant of a RunEngine fleet and its
	// scenario.
	TenantScenario = experiment.TenantScenario
	// TenantResult is one tenant's outcome of a RunEngine run.
	TenantResult = experiment.TenantResult
	// EngineResult aggregates a RunEngine run.
	EngineResult = experiment.EngineResult
)

// EngineOptions tunes engine sharding: Shards groups tenants (by ID
// hash) into concurrently stepped groups, Workers bounds the pool.
// Either <= 0 uses the worker-pool default.
type EngineOptions = experiment.EngineOptions

// NewEngine builds a sharded multi-tenant engine over pre-assembled
// tenants (controller plus world-advance hook each). Use RunEngine for
// the common case of one simulated scenario per tenant.
func NewEngine(tenants []Tenant, opts EngineOptions) (*Engine, error) {
	return control.NewEngine(tenants, control.EngineOptions{Shards: opts.Shards, Workers: opts.Workers})
}

// RunEngine builds one fully isolated simulated world per tenant and
// steps the whole fleet concurrently on the sharded engine. Per-tenant
// results are bit-identical to running each scenario alone with Run,
// for any shard or worker count.
func RunEngine(tenants []TenantScenario, opts EngineOptions) (EngineResult, error) {
	return experiment.RunEngine(tenants, opts)
}

// MultiTenant derives n tenant scenarios from a base scenario, one
// stable ID and seed per tenant.
func MultiTenant(n int, base Scenario) []TenantScenario {
	return experiment.MultiTenant(n, base)
}

// Trace-replay substrate types: the second Substrate implementation,
// driving the full control loop from recorded (or exported) labeled
// metric traces instead of the simulator.
type (
	// ReplaySubstrate replays per-VM labeled metric series through the
	// substrate contract, book-keeping inventory and logging actuations.
	ReplaySubstrate = replay.Substrate
	// ReplayConfig seeds initial allocations and the migration model.
	ReplayConfig = replay.Config
	// ReplayAction is one actuation recorded by a replay substrate.
	ReplayAction = replay.Action
	// ReplayApp adapts a replay substrate to the ManagedApp contract:
	// the SLO state is reconstructed from the traces' recorded labels.
	ReplayApp = replay.App
)

// NewReplaySubstrate builds a replay substrate over per-VM labeled
// series (each non-empty and sorted by time).
func NewReplaySubstrate(traces map[VMID][]Sample, cfg ReplayConfig) (*ReplaySubstrate, error) {
	return replay.New(traces, cfg)
}

// ReplayFromCSV builds a replay substrate by parsing one sample-CSV
// stream per VM (the format written by WriteSamplesCSV and the
// preparetrace tool).
func ReplayFromCSV(sources map[VMID]io.Reader, cfg ReplayConfig) (*ReplaySubstrate, error) {
	return replay.FromCSV(map[substrate.VMID]io.Reader(sources), cfg)
}

// NewReplayApp wraps a replay substrate as the managed application.
func NewReplayApp(sub *ReplaySubstrate) (*ReplayApp, error) {
	return replay.NewApp(sub)
}
