package predict

import (
	"sort"

	"prepare/internal/metrics"
)

// RelabelForTraining prepares one component's labels for classifier
// training:
//
//  1. Fault localization gating: abnormal labels are downgraded to normal
//     on rows where the component's own metrics do not deviate from its
//     fault-free baseline (at least two attributes beyond 3.5 sigma), so
//     healthy components do not learn application-level violation windows
//     as their own anomaly signatures — the role the paper delegates to
//     its fault localization techniques [13,14].
//  2. Pre-anomaly extension: rows within lookbackSamples BEFORE each
//     violation onset are labeled abnormal when they pass the same
//     deviation gate. This teaches the classifier the faulty component's
//     pre-violation drift signature (the alert-state labeling of the
//     authors' earlier anomaly prediction work), which is what gives the
//     online predictor usable lead time.
//
// The slices are modified in place.
func RelabelForTraining(rows [][]float64, labels []metrics.Label, lookbackSamples int) {
	if len(rows) == 0 || len(rows) != len(labels) {
		return
	}
	nCols := len(rows[0])
	// Robust per-column baseline: median and MAD over the normal-labeled
	// rows. A mean/std baseline would be contaminated by the pre-anomaly
	// drift itself (which carries normal labels until the SLO breaks).
	cols := make([][]float64, nCols)
	for i, row := range rows {
		if labels[i] != metrics.LabelNormal || len(row) != nCols {
			continue
		}
		for j, v := range row {
			cols[j] = append(cols[j], v)
		}
	}
	if len(cols[0]) < 10 {
		return // not enough baseline to judge; keep labels as-is
	}
	mean := make([]float64, nCols) // robust center (median)
	std := make([]float64, nCols)  // robust spread (1.4826 * MAD)
	for j := range cols {
		mean[j] = median(cols[j])
		devs := make([]float64, len(cols[j]))
		for i, v := range cols[j] {
			d := v - mean[j]
			if d < 0 {
				d = -d
			}
			devs[i] = d
		}
		std[j] = 1.4826 * median(devs)
		if std[j] < 1e-9 {
			std[j] = 1e-9
		}
	}
	const (
		zThreshold   = 5.0
		minDeviating = 2
	)
	deviating := make([]bool, len(rows))
	for i, row := range rows {
		count := 0
		for j, v := range row {
			if z := (v - mean[j]) / std[j]; z > zThreshold || z < -zThreshold {
				count++
			}
		}
		deviating[i] = count >= minDeviating
	}

	for i := range labels {
		if labels[i] == metrics.LabelAbnormal && !deviating[i] {
			labels[i] = metrics.LabelNormal
		}
	}

	// Backward extension at each remaining violation onset.
	for i := 1; i < len(labels); i++ {
		if labels[i] != metrics.LabelAbnormal || labels[i-1] != metrics.LabelNormal {
			continue
		}
		lo := i - lookbackSamples
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			if !deviating[j] {
				break // extend only through the contiguous drift
			}
			labels[j] = metrics.LabelAbnormal
		}
	}

	// Minimum support: a handful of surviving abnormal rows is noise that
	// slipped through the gate (e.g., a healthy VM whose workload happened
	// to spike during the violation), not a learnable anomaly signature.
	// Training on them would yield a model that false-alarms whenever the
	// coincidental pattern recurs.
	const minAbnormalSupport = 6
	abnormal := 0
	for _, l := range labels {
		if l == metrics.LabelAbnormal {
			abnormal++
		}
	}
	if abnormal > 0 && abnormal < minAbnormalSupport {
		for i, l := range labels {
			if l == metrics.LabelAbnormal {
				labels[i] = metrics.LabelNormal
			}
		}
	}
}

// median returns the middle value of xs (copying so the input order is
// preserved).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
