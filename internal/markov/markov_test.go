package markov

import (
	"math"
	"testing"
	"testing/quick"
)

func sumsToOne(t *testing.T, dist []float64, ctx string) {
	t.Helper()
	sum := 0.0
	for _, p := range dist {
		if p < -1e-12 {
			t.Errorf("%s: negative probability %g", ctx, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("%s: distribution sums to %g", ctx, sum)
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewSimpleChain(0); err == nil {
		t.Error("zero states should fail")
	}
	if _, err := NewTwoDepChain(-1); err == nil {
		t.Error("negative states should fail")
	}
}

func TestObserveRange(t *testing.T) {
	s, err := NewSimpleChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(3); err == nil {
		t.Error("out-of-range observation should fail")
	}
	if err := s.Observe(-1); err == nil {
		t.Error("negative observation should fail")
	}
	d, err := NewTwoDepChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Observe(5); err == nil {
		t.Error("out-of-range observation should fail")
	}
}

func TestUntrainedPredictsUniform(t *testing.T) {
	s, err := NewSimpleChain(4)
	if err != nil {
		t.Fatal(err)
	}
	dist := s.Predict(3)
	sumsToOne(t, dist, "simple untrained")
	for _, p := range dist {
		if math.Abs(p-0.25) > 1e-12 {
			t.Errorf("untrained simple chain should be uniform, got %v", dist)
		}
	}
	d, err := NewTwoDepChain(4)
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, d.Predict(3), "twodep untrained")
}

func TestPredictZeroStepsIsCurrentState(t *testing.T) {
	s, err := NewSimpleChain(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	dist := s.Predict(0)
	if dist[2] != 1 {
		t.Errorf("Predict(0) = %v, want point mass on 2", dist)
	}
}

func TestSimpleChainLearnsCycle(t *testing.T) {
	s, err := NewSimpleChain(3)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic cycle 0 -> 1 -> 2 -> 0.
	seq := make([]int, 0, 300)
	for i := 0; i < 100; i++ {
		seq = append(seq, 0, 1, 2)
	}
	if err := s.Fit(seq); err != nil {
		t.Fatal(err)
	}
	// Current state is 2 (last of the cycle); one step ahead must be 0.
	dist := s.Predict(1)
	sumsToOne(t, dist, "cycle step1")
	if ArgMax(dist) != 0 {
		t.Errorf("one step from 2 should be 0, got %v", dist)
	}
	// Three steps ahead returns to 2.
	if got := ArgMax(s.Predict(3)); got != 2 {
		t.Errorf("three steps from 2 should be 2, got %d", got)
	}
}

func TestTwoDepDisambiguatesSlope(t *testing.T) {
	// Triangle wave 0,1,2,3,2,1,0,1,2,3,... The simple chain cannot know
	// whether state 2 moves to 3 or to 1; the 2-dependent chain can.
	wave := []int{0, 1, 2, 3, 2, 1}
	seq := make([]int, 0, 600)
	for i := 0; i < 100; i++ {
		seq = append(seq, wave...)
	}
	// End mid-ascent: ... 0, 1, 2 with prev=1, cur=2 -> next must be 3.
	seq = append(seq, 0, 1, 2)

	d, err := NewTwoDepChain(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fit(seq); err != nil {
		t.Fatal(err)
	}
	distD := d.Predict(1)
	sumsToOne(t, distD, "twodep slope")
	if ArgMax(distD) != 3 {
		t.Errorf("2-dep chain on ascent at 2 should predict 3, got %v", distD)
	}
	if distD[3] < 0.9 {
		t.Errorf("2-dep chain should be confident, P(3) = %g", distD[3])
	}

	s, err := NewSimpleChain(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(seq); err != nil {
		t.Fatal(err)
	}
	distS := s.Predict(1)
	// The simple chain must be torn roughly 50/50 between 1 and 3.
	if distS[3] > 0.8 || distS[1] > 0.8 {
		t.Errorf("simple chain should be ambiguous on a triangle wave, got %v", distS)
	}
	if distD[3] <= distS[3] {
		t.Errorf("2-dep (%.2f) should beat simple (%.2f) on slope prediction", distD[3], distS[3])
	}
}

func TestTwoDepMultiStepOnWave(t *testing.T) {
	wave := []int{0, 1, 2, 3, 2, 1}
	seq := make([]int, 0, 600)
	for i := 0; i < 100; i++ {
		seq = append(seq, wave...)
	}
	seq = append(seq, 0, 1) // prev=0, cur=1, ascending
	d, err := NewTwoDepChain(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fit(seq); err != nil {
		t.Fatal(err)
	}
	// Two steps ahead of (0,1) is 3.
	if got := ArgMax(d.Predict(2)); got != 3 {
		t.Errorf("two steps from ascending 1 should be 3, got %d (%v)", got, d.Predict(2))
	}
}

func TestTwoDepBackoffForUnseenPair(t *testing.T) {
	d, err := NewTwoDepChain(3)
	if err != nil {
		t.Fatal(err)
	}
	// Train only on 0->1->2 transitions.
	if err := d.Fit([]int{0, 1, 2, 0, 1, 2, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	// Manufacture an unseen combined state (2, 1): observe 1 after cur=2.
	if err := d.Observe(1); err != nil {
		t.Fatal(err)
	}
	dist := d.Predict(1)
	sumsToOne(t, dist, "backoff")
	// Backoff uses cur=1 statistics, which always moved to 2.
	if ArgMax(dist) != 2 {
		t.Errorf("backoff should predict 2, got %v", dist)
	}
}

func TestTwoDepSingleObservation(t *testing.T) {
	d, err := NewTwoDepChain(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Observe(1); err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, d.Predict(2), "single obs")
	dist := d.Predict(0)
	if dist[1] != 1 {
		t.Errorf("Predict(0) after one obs = %v, want point mass on 1", dist)
	}
}

func TestPropertyDistributionsValid(t *testing.T) {
	f := func(obsRaw []uint8, stepsRaw uint8) bool {
		const states = 5
		steps := int(stepsRaw % 12)
		s, err := NewSimpleChain(states)
		if err != nil {
			return false
		}
		d, err := NewTwoDepChain(states)
		if err != nil {
			return false
		}
		for _, o := range obsRaw {
			bin := int(o) % states
			if s.Observe(bin) != nil || d.Observe(bin) != nil {
				return false
			}
		}
		for _, dist := range [][]float64{s.Predict(steps), d.Predict(steps)} {
			sum := 0.0
			for _, p := range dist {
				if p < -1e-12 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{0.1, 0.5, 0.4}); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax([]float64{0.5, 0.5}); got != 0 {
		t.Errorf("tie should break low, got %d", got)
	}
}

func TestExpectation(t *testing.T) {
	if got := Expectation([]float64{0, 0, 1}); got != 2 {
		t.Errorf("Expectation = %g, want 2", got)
	}
	if got := Expectation([]float64{0.5, 0, 0.5}); got != 1 {
		t.Errorf("Expectation = %g, want 1", got)
	}
}

func TestLongHorizonApproachesStationary(t *testing.T) {
	s, err := NewSimpleChain(2)
	if err != nil {
		t.Fatal(err)
	}
	// A noisy (aperiodic) alternation: mostly flips, sometimes repeats.
	// The stationary distribution is 50/50 and long-horizon predictions
	// must approach it.
	seq := make([]int, 0, 300)
	cur := 0
	for i := 0; i < 300; i++ {
		if i%7 != 0 { // flip 6 times out of 7
			cur = 1 - cur
		}
		seq = append(seq, cur)
	}
	if err := s.Fit(seq); err != nil {
		t.Fatal(err)
	}
	long := s.Predict(1000)
	if math.Abs(long[0]-0.5) > 0.1 {
		t.Errorf("long-horizon distribution %v should approach [0.5 0.5]", long)
	}
	sumsToOne(t, long, "aperiodic alternating")
}
