package infer

import (
	"math/rand"
	"testing"

	"prepare/internal/cloudsim"
	"prepare/internal/detector"
	"prepare/internal/metrics"
	"prepare/internal/simclock"
)

func TestDiagnoseRanksPositiveStrengths(t *testing.T) {
	verdict := detector.Verdict{
		Score: 2.5,
		Strengths: []detector.Strength{
			{Attribute: metrics.FreeMem.Index(), L: 3.1},
			{Attribute: metrics.Load1.Index(), L: 2.0},
			{Attribute: metrics.NetIn.Index(), L: 0.4},
			{Attribute: metrics.NetOut.Index(), L: -0.14},
		},
	}
	d, err := Diagnose("vm-db", verdict)
	if err != nil {
		t.Fatal(err)
	}
	if d.VM != "vm-db" || d.Score != 2.5 {
		t.Errorf("diagnosis meta = %+v", d)
	}
	// Only the three positive strengths, in order.
	want := []metrics.Attribute{metrics.FreeMem, metrics.Load1, metrics.NetIn}
	if len(d.Ranked) != len(want) {
		t.Fatalf("ranked = %v", d.Ranked)
	}
	for i := range want {
		if d.Ranked[i] != want[i] {
			t.Errorf("ranked[%d] = %v, want %v", i, d.Ranked[i], want[i])
		}
	}
	top, ok := d.TopAttribute()
	if !ok || top != metrics.FreeMem {
		t.Errorf("TopAttribute = %v, %v", top, ok)
	}
}

func TestDiagnoseNoPositiveStrengths(t *testing.T) {
	verdict := detector.Verdict{
		Strengths: []detector.Strength{{Attribute: 0, L: -1}},
	}
	d, err := Diagnose("vm1", verdict)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.TopAttribute(); ok {
		t.Error("no positive strengths should yield no top attribute")
	}
}

func TestDiagnoseBadIndex(t *testing.T) {
	verdict := detector.Verdict{
		Strengths: []detector.Strength{{Attribute: 99, L: 1}},
	}
	if _, err := Diagnose("vm1", verdict); err == nil {
		t.Error("out-of-range attribute index should fail")
	}
}

func TestResourceFor(t *testing.T) {
	tests := []struct {
		attr metrics.Attribute
		want ResourceKind
	}{
		{metrics.CPUTotal, ResourceCPU},
		{metrics.CPUUser, ResourceCPU},
		{metrics.Load1, ResourceCPU},
		{metrics.CtxSwitch, ResourceCPU},
		{metrics.FreeMem, ResourceMemory},
		{metrics.MemUsed, ResourceMemory},
		{metrics.PageFaults, ResourceMemory},
		{metrics.NetIn, ResourceOther},
		{metrics.DiskWrite, ResourceOther},
	}
	for _, tt := range tests {
		if got := ResourceFor(tt.attr); got != tt.want {
			t.Errorf("ResourceFor(%v) = %v, want %v", tt.attr, got, tt.want)
		}
	}
}

func TestRankedResourcesDedupes(t *testing.T) {
	d := Diagnosis{Ranked: []metrics.Attribute{
		metrics.FreeMem, metrics.PageFaults, metrics.NetIn, metrics.CPUTotal, metrics.Load1,
	}}
	got := RankedResources(d)
	want := []ResourceKind{ResourceMemory, ResourceCPU}
	if len(got) != len(want) {
		t.Fatalf("resources = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resource[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestResourceKindString(t *testing.T) {
	if ResourceCPU.String() != "cpu" || ResourceMemory.String() != "memory" || ResourceOther.String() != "other" {
		t.Error("resource names wrong")
	}
}

func TestNewChangeDetectorValidation(t *testing.T) {
	if _, err := NewChangeDetector(1, 5); err == nil {
		t.Error("tiny warmup should fail")
	}
	if _, err := NewChangeDetector(10, 0); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestChangeDetectorFlagsLevelShift(t *testing.T) {
	d, err := NewChangeDetector(30, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	detected := false
	for i := 0; i < 120; i++ {
		v := 10 + rng.NormFloat64()
		if i >= 60 {
			v += 8 // level shift
		}
		change := d.Offer(v)
		if change && i >= 60 {
			detected = true
		}
		if change && i < 55 {
			t.Fatalf("false change point at %d", i)
		}
	}
	if !detected {
		t.Error("level shift not detected")
	}
}

func TestChangeDetectorQuietOnStationary(t *testing.T) {
	d, err := NewChangeDetector(30, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		if d.Offer(20 + rng.NormFloat64()) {
			t.Fatalf("spurious change point at %d", i)
		}
	}
}

func TestChangeDetectorDetectsDownShift(t *testing.T) {
	d, err := NewChangeDetector(20, 8)
	if err != nil {
		t.Fatal(err)
	}
	detected := false
	for i := 0; i < 100; i++ {
		v := 50.0
		if i >= 50 {
			v = 30
		}
		if d.Offer(v) {
			detected = true
		}
	}
	if !detected {
		t.Error("downward shift not detected")
	}
}

func toVMIDs(names []string) []cloudsim.VMID {
	out := make([]cloudsim.VMID, len(names))
	for i, n := range names {
		out[i] = cloudsim.VMID(n)
	}
	return out
}

func TestWorkloadDetectorValidation(t *testing.T) {
	if _, err := NewWorkloadDetector(nil, 10, 30); err == nil {
		t.Error("no VMs should fail")
	}
	if _, err := NewWorkloadDetector(toVMIDs([]string{"a"}), 10, 0); err == nil {
		t.Error("zero window should fail")
	}
}

func TestWorkloadDetectorAllComponentsChange(t *testing.T) {
	vms := []string{"vm1", "vm2", "vm3"}
	w, err := NewWorkloadDetector(toVMIDs(vms), 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Steady phase then a simultaneous jump on all VMs (workload change).
	for i := 0; i < 80; i++ {
		now := simclock.Time(i)
		for _, vm := range toVMIDs(vms) {
			v := 10.0
			if i >= 50 {
				v = 30
			}
			if err := w.Offer(now, vm, v); err != nil {
				t.Fatal(err)
			}
		}
		if i < 45 && w.WorkloadChange(now) {
			t.Fatalf("premature workload change at %d", i)
		}
	}
	if !w.WorkloadChange(79) {
		t.Error("simultaneous shift on all VMs should report a workload change")
	}
	if got := len(w.ChangedVMs(79)); got != 3 {
		t.Errorf("ChangedVMs = %d, want 3", got)
	}
}

func TestChangedVMsCanonicalOrder(t *testing.T) {
	// The detector is built from an unsorted VM list; ChangedVMs must
	// still return canonical sorted order every call, regardless of map
	// iteration or insertion order.
	unsorted := toVMIDs([]string{"vm9", "vm2", "vm7", "vm1"})
	w, err := NewWorkloadDetector(unsorted, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		now := simclock.Time(i)
		for _, vm := range unsorted {
			v := 10.0
			if i >= 50 {
				v = 30
			}
			if err := w.Offer(now, vm, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := toVMIDs([]string{"vm1", "vm2", "vm7", "vm9"})
	for trial := 0; trial < 5; trial++ {
		got := w.ChangedVMs(79)
		if len(got) != len(want) {
			t.Fatalf("trial %d: ChangedVMs = %v, want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ChangedVMs = %v, want sorted %v", trial, got, want)
			}
		}
	}
}

func TestWorkloadDetectorSingleVMChangeIsNotWorkload(t *testing.T) {
	vms := toVMIDs([]string{"vm1", "vm2"})
	w, err := NewWorkloadDetector(vms, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		now := simclock.Time(i)
		v1 := 10.0
		if i >= 50 {
			v1 = 40 // only vm1 shifts (an internal fault)
		}
		if err := w.Offer(now, "vm1", v1); err != nil {
			t.Fatal(err)
		}
		if err := w.Offer(now, "vm2", 10); err != nil {
			t.Fatal(err)
		}
	}
	if w.WorkloadChange(79) {
		t.Error("single-VM change must not be classified as workload change")
	}
	if got := len(w.ChangedVMs(79)); got != 1 {
		t.Errorf("ChangedVMs = %d, want 1", got)
	}
}

func TestWorkloadDetectorWindowExpiry(t *testing.T) {
	vms := toVMIDs([]string{"vm1", "vm2"})
	w, err := NewWorkloadDetector(vms, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// vm1 changes early, vm2 changes much later: outside the window.
	for i := 0; i < 200; i++ {
		now := simclock.Time(i)
		v1, v2 := 10.0, 10.0
		if i >= 30 && i < 60 {
			v1 = 40
		}
		if i >= 150 {
			v2 = 40
		}
		if err := w.Offer(now, "vm1", v1); err != nil {
			t.Fatal(err)
		}
		if err := w.Offer(now, "vm2", v2); err != nil {
			t.Fatal(err)
		}
	}
	if w.WorkloadChange(199) {
		t.Error("changes far apart in time must not count as a workload change")
	}
}

func TestWorkloadDetectorUnknownVM(t *testing.T) {
	w, err := NewWorkloadDetector(toVMIDs([]string{"vm1"}), 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Offer(0, "ghost", 1); err == nil {
		t.Error("unknown VM should fail")
	}
}
