package server

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"prepare/internal/chaos"
	"prepare/internal/control"
	"prepare/internal/metrics"
	"prepare/internal/prevent"
	"prepare/internal/replay"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
	"prepare/internal/telemetry"
)

const (
	testHorizon = 1500
	testTrainAt = 600
)

var testEpisodes = [][2]int64{{200, 500}, {900, 1200}}

func vmName(tenant string, i int) substrate.VMID {
	return substrate.VMID(fmt.Sprintf("%s-vm%d", tenant, i))
}

// tenantTraces builds deterministic per-VM labeled traces for one
// tenant.
func tenantTraces(tenant string, vms int, seed int64) map[substrate.VMID][]metrics.Sample {
	out := make(map[substrate.VMID][]metrics.Sample, vms)
	for i := 0; i < vms; i++ {
		out[vmName(tenant, i)] = replay.SyntheticTrace(seed+int64(i)*101, testHorizon, testEpisodes)
	}
	return out
}

func testControlConfig(seed, trainAtS int64) control.Config {
	return control.Config{TrainAtS: trainAtS, MonitorNoiseStd: -1, MonitorSeed: seed}
}

// syncRun is the synchronous oracle: the same traces through a plain
// single-threaded controller over an appendable substrate, fed and
// pre-advanced exactly like the server's shard workers — the pipeline
// must add nothing and lose nothing relative to this straight-line
// loop.
func syncRun(t *testing.T, traces map[substrate.VMID][]metrics.Sample, plan chaos.Plan, cfg control.Config, until int64) ([]control.AlertEvent, []prevent.Step) {
	t.Helper()
	vms := sortedVMs(traces)
	sub, err := replay.NewAppendable(vms, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := replay.NewApp(sub)
	if err != nil {
		t.Fatal(err)
	}
	var loop substrate.Substrate = sub
	if plan.Enabled() {
		if loop, err = chaos.New(sub, plan); err != nil {
			t.Fatal(err)
		}
	}
	cfg.MonitorNoiseStd = -1
	ctl, err := control.New(control.SchemePREPARE, loop, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := int64(0)
	for tm := int64(0); tm <= until; tm += 5 {
		for _, vm := range vms {
			for _, sm := range traces[vm] {
				if sm.Time.Seconds() == tm {
					if err := sub.Append(vm, sm); err != nil {
						t.Fatalf("oracle append t=%d: %v", tm, err)
					}
				}
			}
		}
		for s := last + 1; s <= tm; s++ {
			sub.Advance(simclock.Time(s))
			if err := ctl.OnTick(simclock.Time(s)); err != nil {
				t.Fatalf("oracle tick %d: %v", s, err)
			}
		}
		last = tm
	}
	return ctl.Alerts(), ctl.Steps()
}

// feed pushes every grid sample in [from, to] into the server, one
// batch per tenant per sampling instant, retrying batches rejected by
// backpressure so nothing is lost.
func feed(t *testing.T, s *Server, traces map[string]map[substrate.VMID][]metrics.Sample, from, to int64) int {
	t.Helper()
	tenants := make([]string, 0, len(traces))
	for id := range traces {
		tenants = append(tenants, id)
	}
	sort.Strings(tenants)
	sent := 0
	for tm := from; tm <= to; tm += 5 {
		for _, id := range tenants {
			b := Batch{Tenant: id}
			for _, vm := range sortedVMs(traces[id]) {
				for _, sm := range traces[id][vm] {
					if sm.Time.Seconds() == tm {
						b.Samples = append(b.Samples, sampleIn(vm, sm))
					}
				}
			}
			if len(b.Samples) == 0 {
				continue
			}
			for {
				_, err := s.Ingest([]Batch{b})
				if err == nil {
					break
				}
				if err == ErrBackpressure {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				t.Fatalf("ingest t=%d tenant=%s: %v", tm, id, err)
			}
			sent += len(b.Samples)
		}
	}
	return sent
}

func sortedVMs(traces map[substrate.VMID][]metrics.Sample) []substrate.VMID {
	out := make([]substrate.VMID, 0, len(traces))
	for id := range traces {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sampleIn(vm substrate.VMID, sm metrics.Sample) SampleIn {
	label := "normal"
	switch sm.Label {
	case metrics.LabelAbnormal:
		label = "abnormal"
	case metrics.LabelUnknown:
		label = "unknown"
	}
	return SampleIn{VM: string(vm), TimeS: sm.Time.Seconds(), Label: label, Values: sm.Values[:]}
}

// drainAlerts reads the whole published alert log.
func drainAlerts(s *Server) []Alert {
	items, _, _, _ := s.alerts.since(0, 0)
	return items
}

func drainAudit(s *Server) []AuditEntry {
	items, _, _, _ := s.audit.since(0, 0)
	return items
}

// canonical sorts a published stream by (Time, Tenant), stable, and
// clears sequence numbers — the engine's canonical aggregate order.
func canonicalAlerts(in []Alert) []Alert {
	out := append([]Alert(nil), in...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].Tenant < out[j].Tenant
	})
	for i := range out {
		out[i].Seq = 0
	}
	return out
}

func canonicalAudit(in []AuditEntry) []AuditEntry {
	out := append([]AuditEntry(nil), in...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].Tenant < out[j].Tenant
	})
	for i := range out {
		out[i].Seq = 0
	}
	return out
}

// oracleAlerts converts per-tenant sync-run output into the canonical
// merged stream.
func oracleAlerts(byTenant map[string][]control.AlertEvent) []Alert {
	var out []Alert
	tenants := make([]string, 0, len(byTenant))
	for id := range byTenant {
		tenants = append(tenants, id)
	}
	sort.Strings(tenants)
	for _, id := range tenants {
		for _, a := range byTenant[id] {
			out = append(out, Alert{Tenant: id, Time: a.Time, VM: a.VM, Score: a.Score, Predicted: a.Predicted})
		}
	}
	return canonicalAlerts(out)
}

func oracleAudit(byTenant map[string][]prevent.Step) []AuditEntry {
	var out []AuditEntry
	tenants := make([]string, 0, len(byTenant))
	for id := range byTenant {
		tenants = append(tenants, id)
	}
	sort.Strings(tenants)
	for _, id := range tenants {
		for _, st := range byTenant[id] {
			out = append(out, AuditEntry{Tenant: id, Time: st.Time, VM: st.VM, Kind: st.Kind, Resource: st.Resource, Detail: st.Detail})
		}
	}
	return canonicalAudit(out)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerMatchesSyncEngine: the asynchronous pipeline must produce a
// byte-identical alert stream and actuation audit log to the
// synchronous engine fed the same traces.
func TestServerMatchesSyncEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("full-horizon equivalence runs outside -short")
	}
	serverVsSync(t, chaosForTenant(nil))
}

// TestServerMatchesSyncEngineWithChaos: same equivalence with
// deterministic fault injection between ingest and the control loops.
func TestServerMatchesSyncEngineWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full-horizon equivalence runs outside -short")
	}
	serverVsSync(t, chaosForTenant(func(seed int64) chaos.Plan {
		return chaos.Uniform(seed, 0.03)
	}))
}

func chaosForTenant(f func(seed int64) chaos.Plan) func(seed int64) chaos.Plan {
	if f == nil {
		return func(int64) chaos.Plan { return chaos.Plan{} }
	}
	return f
}

func serverVsSync(t *testing.T, planFor func(seed int64) chaos.Plan) {
	t.Helper()
	tenants := []string{"alpha", "beta", "gamma"}
	traces := make(map[string]map[substrate.VMID][]metrics.Sample, len(tenants))
	cfgs := make([]TenantConfig, 0, len(tenants))
	for i, id := range tenants {
		seed := int64(100 + i*17)
		traces[id] = tenantTraces(id, 2, seed)
		cfgs = append(cfgs, TenantConfig{
			ID:      id,
			VMs:     sortedVMs(traces[id]),
			Control: testControlConfig(seed, testTrainAt),
			Chaos:   planFor(seed),
		})
	}
	reg := telemetry.New(telemetry.Options{})
	srv, err := New(cfgs, Config{Shards: 2, QueueDepth: 16, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	sent := feed(t, srv, traces, 0, testHorizon)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Failure(); err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}

	st := srv.Stats()
	if st.SamplesApplied != int64(sent) {
		t.Errorf("samples lost: sent %d, applied %d", sent, st.SamplesApplied)
	}
	if st.AppendErrors != 0 {
		t.Errorf("append errors: %d", st.AppendErrors)
	}

	wantAlerts := make(map[string][]control.AlertEvent, len(tenants))
	wantSteps := make(map[string][]prevent.Step, len(tenants))
	for i, id := range tenants {
		seed := int64(100 + i*17)
		a, s := syncRun(t, traces[id], planFor(seed), testControlConfig(seed, testTrainAt), testHorizon)
		wantAlerts[id], wantSteps[id] = a, s
	}

	gotAlerts := canonicalAlerts(drainAlerts(srv))
	expAlerts := oracleAlerts(wantAlerts)
	if len(expAlerts) == 0 {
		t.Fatal("oracle produced no alerts; the scenario is too quiet to prove equivalence")
	}
	if !reflect.DeepEqual(mustJSON(t, gotAlerts), mustJSON(t, expAlerts)) {
		t.Errorf("alert streams differ:\n got %s\nwant %s", mustJSON(t, gotAlerts), mustJSON(t, expAlerts))
	}
	gotAudit := canonicalAudit(drainAudit(srv))
	expAudit := oracleAudit(wantSteps)
	if !reflect.DeepEqual(mustJSON(t, gotAudit), mustJSON(t, expAudit)) {
		t.Errorf("audit streams differ:\n got %s\nwant %s", mustJSON(t, gotAudit), mustJSON(t, expAudit))
	}
	if int64(len(gotAlerts)) != st.AlertsPublished {
		t.Errorf("published %d alerts but log holds %d", st.AlertsPublished, len(gotAlerts))
	}
}

// TestServerWatermarkGating: the control loops may only tick through
// instants every VM has reported; a lagging VM holds its whole shard.
func TestServerWatermarkGating(t *testing.T) {
	traces := map[string]map[substrate.VMID][]metrics.Sample{
		"solo": tenantTraces("solo", 2, 7),
	}
	srv, err := New([]TenantConfig{{
		ID:      "solo",
		VMs:     sortedVMs(traces["solo"]),
		Control: testControlConfig(7, testTrainAt),
	}}, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	vms := sortedVMs(traces["solo"])
	send := func(vm substrate.VMID, from, upto int64) int {
		n := 0
		for _, sm := range traces["solo"][vm] {
			if sm.Time.Seconds() < from || sm.Time.Seconds() > upto {
				continue
			}
			if _, err := srv.Ingest([]Batch{{Tenant: "solo", Samples: []SampleIn{sampleIn(vm, sm)}}}); err != nil {
				t.Fatalf("ingest: %v", err)
			}
			n++
		}
		return n
	}
	sent := send(vms[0], 0, 100)
	sent += send(vms[1], 0, 50)

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SamplesApplied < int64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not drain: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Stats().Ticks; got != 50 {
		t.Errorf("ticks = %d, want 50 (watermark is the slowest VM's last sample)", got)
	}

	// The lagging VM catches up: the shard advances to the new minimum.
	sent += send(vms[1], 55, 100)
	for srv.Stats().SamplesApplied < int64(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not drain: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Stats().Ticks; got != 100 {
		t.Errorf("ticks = %d, want 100 after catch-up", got)
	}
}

// TestEventLogRing: sequence numbers survive ring eviction and cursor
// reads report the truncation.
func TestEventLogRing(t *testing.T) {
	l := newEventLog[int](4)
	for i := 0; i < 10; i++ {
		seq := l.append(func(seq uint64) int { return int(seq) })
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	if l.retained() != 4 {
		t.Fatalf("retained %d, want 4", l.retained())
	}
	items, next, first, truncated := l.since(0, 0)
	if !truncated {
		t.Error("eviction past the cursor must report truncation")
	}
	if first != 7 || next != 10 {
		t.Errorf("first=%d next=%d, want 7/10", first, next)
	}
	if !reflect.DeepEqual(items, []int{7, 8, 9, 10}) {
		t.Errorf("items = %v", items)
	}
	items, next, _, truncated = l.since(8, 1)
	if truncated || len(items) != 1 || items[0] != 9 || next != 9 {
		t.Errorf("cursor read: items=%v next=%d truncated=%v", items, next, truncated)
	}
	items, next, _, _ = l.since(10, 0)
	if len(items) != 0 || next != 10 {
		t.Errorf("caught-up read: items=%v next=%d", items, next)
	}
}
