//go:build race

package placement

// raceEnabled reports whether the race detector is instrumenting this
// build; wall-clock latency budgets are meaningless under its overhead.
const raceEnabled = true
