package predict

import (
	"encoding/json"
	"fmt"
	"io"

	"prepare/internal/bayes"
	"prepare/internal/markov"
	"prepare/internal/metrics"
)

// predictorSnapshot is the JSON wire format of a trained predictor.
type predictorSnapshot struct {
	Version      int                           `json:"version"`
	Names        []string                      `json:"names"`
	Config       Config                        `json:"config"`
	Discretizers []metrics.DiscretizerSnapshot `json:"discretizers"`
	Chains       []markov.Snapshot             `json:"chains"`
	Model        bayes.Snapshot                `json:"model"`
}

// snapshotVersion guards the wire format.
const snapshotVersion = 1

// Save writes the trained predictor as JSON, so a model trained offline
// can be deployed to score live streams without retraining.
func (p *Predictor) Save(w io.Writer) error {
	if !p.trained {
		return ErrNotTrained
	}
	snap := predictorSnapshot{
		Version: snapshotVersion,
		Names:   append([]string(nil), p.names...),
		Config:  p.cfg,
		Model:   p.model.Snapshot(),
	}
	for j := range p.names {
		ew, ok := p.disc[j].(*metrics.EqualWidth)
		if !ok {
			return fmt.Errorf("predict: unsupported discretizer type for %s", p.names[j])
		}
		snap.Discretizers = append(snap.Discretizers, ew.Snapshot())
		switch ch := p.chains[j].(type) {
		case *markov.SimpleChain:
			snap.Chains = append(snap.Chains, ch.Snapshot())
		case *markov.TwoDepChain:
			snap.Chains = append(snap.Chains, ch.Snapshot())
		default:
			return fmt.Errorf("predict: unsupported chain type for %s", p.names[j])
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("predict: encode snapshot: %w", err)
	}
	return nil
}

// Load reconstructs a trained predictor saved with Save.
func Load(r io.Reader) (*Predictor, error) {
	var snap predictorSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("predict: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("predict: unsupported snapshot version %d", snap.Version)
	}
	n := len(snap.Names)
	if n == 0 {
		return nil, fmt.Errorf("predict: snapshot has no columns")
	}
	if len(snap.Discretizers) != n || len(snap.Chains) != n {
		return nil, fmt.Errorf("predict: snapshot shape mismatch (%d names, %d discretizers, %d chains)",
			n, len(snap.Discretizers), len(snap.Chains))
	}
	p, err := New(snap.Config, snap.Names)
	if err != nil {
		return nil, err
	}
	p.disc = make([]metrics.Discretizer, n)
	p.chains = make([]markov.Predictor, n)
	for j := 0; j < n; j++ {
		d, err := metrics.DiscretizerFromSnapshot(snap.Discretizers[j])
		if err != nil {
			return nil, fmt.Errorf("predict: column %s: %w", snap.Names[j], err)
		}
		p.disc[j] = d
		ch, err := markov.FromSnapshot(snap.Chains[j])
		if err != nil {
			return nil, fmt.Errorf("predict: column %s: %w", snap.Names[j], err)
		}
		p.chains[j] = ch
	}
	model, err := bayes.FromSnapshot(snap.Model)
	if err != nil {
		return nil, fmt.Errorf("predict: %w", err)
	}
	if model.NumAttributes() != n {
		return nil, fmt.Errorf("predict: snapshot classifier has %d attributes, want %d",
			model.NumAttributes(), n)
	}
	p.model = model
	p.trained = true
	return p, nil
}
