package metrics

import (
	"testing"
)

func TestEqualWidthSnapshotRoundTrip(t *testing.T) {
	d, err := NewEqualWidthRange(-10, 90, 8)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DiscretizerFromSnapshot(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-20, -10, 0, 44.4, 89.9, 90, 200} {
		if got, want := restored.Bin(v), d.Bin(v); got != want {
			t.Errorf("Bin(%g) = %d, want %d", v, got, want)
		}
	}
	for b := 0; b < 8; b++ {
		if restored.Center(b) != d.Center(b) {
			t.Errorf("Center(%d) differs", b)
		}
	}
}

func TestQuantileSnapshotRoundTrip(t *testing.T) {
	values := []float64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	d, err := NewQuantile(values, 4)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DiscretizerFromSnapshot(d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if got, want := restored.Bin(v), d.Bin(v); got != want {
			t.Errorf("Bin(%g) = %d, want %d", v, got, want)
		}
	}
	if restored.NumBins() != d.NumBins() {
		t.Errorf("NumBins = %d, want %d", restored.NumBins(), d.NumBins())
	}
}

func TestDiscretizerFromSnapshotValidation(t *testing.T) {
	cases := map[string]DiscretizerSnapshot{
		"unknown kind":  {Kind: "fourier"},
		"bad range":     {Kind: "equal-width", Lo: 5, Hi: 5, Bins: 3},
		"zero bins":     {Kind: "equal-width", Lo: 0, Hi: 1, Bins: 0},
		"no centers":    {Kind: "quantile"},
		"cut mismatch":  {Kind: "quantile", Cuts: []float64{1, 2}, Centers: []float64{0}},
		"unsorted cuts": {Kind: "quantile", Cuts: []float64{5, 1}, Centers: []float64{0, 3, 7}},
	}
	for name, snap := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DiscretizerFromSnapshot(snap); err == nil {
				t.Error("invalid snapshot should fail")
			}
		})
	}
}
