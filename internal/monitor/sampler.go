package monitor

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"prepare/internal/columnar"
	"prepare/internal/metrics"
	"prepare/internal/simclock"
	"prepare/internal/substrate"
	"prepare/internal/telemetry"
)

// DefaultSamplingInterval is the paper's metric sampling interval (5 s).
const DefaultSamplingInterval = int64(5)

// noiseOrder fixes the per-attribute order in which measurement noise is
// drawn from the RNG. It is part of the determinism contract: the order
// predates the substrate refactor (it follows the original derivation
// sequence, not attribute index order), so seeded experiment results
// stay byte-identical across versions.
var noiseOrder = []metrics.Attribute{
	metrics.CPUTotal, metrics.CPUUser, metrics.CPUSystem,
	metrics.FreeMem, metrics.MemUsed,
	metrics.NetIn, metrics.NetOut,
	metrics.DiskRead, metrics.DiskWrite,
	metrics.Load1, metrics.Load5,
	metrics.CtxSwitch, metrics.PageFaults,
}

// Sampler collects the 13 system-level attributes of each monitored VM
// from any substrate's metric source, adds measurement noise, and
// appends labeled samples to per-VM series. It is the simulated
// analogue of domain-0 libxenstat monitoring, but works identically
// over replayed traces or any other MetricSource.
//
// The sampler tolerates an unreliable source: transient sample errors
// (substrate.ErrUnavailable) are bridged by carrying the VM's last
// known-good vector forward, NaN/Inf/negative readings are sanitized
// against it before discretization ever sees them, and a sensor that
// freezes on one bitwise-identical vector is detected as stuck. Both
// carried and stuck samples count toward a bounded per-VM staleness
// budget; once it is exceeded the synthesized samples stop being
// appended to the training series (the control loop still receives
// them), so a long outage cannot teach the models a flat line.
type Sampler struct {
	source   substrate.MetricSource
	vmIDs    []substrate.VMID
	rng      *rand.Rand
	noiseStd float64
	res      Resilience

	series map[substrate.VMID]*metrics.Series

	// lastGood is each VM's most recent sanitized raw vector; it seeds
	// carry-forward and per-attribute sanitization fallbacks.
	lastGood map[substrate.VMID]metrics.Vector
	haveGood map[substrate.VMID]bool
	// staleRun counts consecutive sampling ticks a VM's value was
	// synthesized (carried forward) or judged sensor-stuck.
	staleRun map[substrate.VMID]int
	// stuckRun counts consecutive bitwise-identical raw vectors.
	stuckRun map[substrate.VMID]int

	// ingested counts appended samples; nil (disabled telemetry) no-ops,
	// as do the resilience counters below.
	ingested     *telemetry.Counter
	carried      *telemetry.Counter
	sanitized    *telemetry.Counter
	stuckSamples *telemetry.Counter
	droppedStale *telemetry.Counter
}

// Resilience tunes the sampler's tolerance of a faulty metric source.
type Resilience struct {
	// MaxStaleTicks bounds how many consecutive sampling ticks a VM's
	// sample may be synthesized (carried forward over a transient error,
	// or repeated by a stuck sensor) and still be appended to the
	// training series (default 6; one monitoring half-minute at the
	// paper's 5 s interval). Past the bound the control loop still
	// receives the carried value, but the series stops recording it.
	MaxStaleTicks int
	// StuckThreshold is the number of consecutive bitwise-identical raw
	// vectors after which the sensor is judged stuck and the samples
	// count as stale. Zero disables stuck detection (the default: clean
	// simulated sources repeat values legitimately only below any
	// sensible threshold, but replayed or chaos-injected sources should
	// enable it).
	StuckThreshold int
}

func (r Resilience) withDefaults() Resilience {
	if r.MaxStaleTicks == 0 {
		r.MaxStaleTicks = 6
	}
	return r
}

// Config parameterizes the sampler.
type Config struct {
	// NoiseStd is the relative standard deviation of measurement noise
	// applied to each attribute (default 0.03 when zero; negative
	// disables noise entirely, for sources that already carry it, such
	// as replayed traces).
	NoiseStd float64
	// Seed drives the noise generator.
	Seed int64
	// Telemetry receives monitoring counters (nil disables, at zero
	// cost on the sampling path).
	Telemetry *telemetry.Registry
	// Resilience tunes carry-forward, sanitization, and stuck-sensor
	// accounting.
	Resilience Resilience
	// WindowSamples bounds each VM's training series to a ring of the
	// most recent samples, capping memory for long-running monitoring.
	// Zero keeps the full history (the default; incremental training
	// does not need old samples, but batch retraining refits from
	// whatever the ring still holds).
	WindowSamples int
}

// NewSampler monitors the given VMs over the metric source.
func NewSampler(source substrate.MetricSource, vmIDs []substrate.VMID, cfg Config) (*Sampler, error) {
	if source == nil {
		return nil, errors.New("monitor: metric source is required")
	}
	if len(vmIDs) == 0 {
		return nil, errors.New("monitor: at least one VM is required")
	}
	for _, id := range vmIDs {
		// A transiently unavailable sample (a chaos drop, a collector
		// hiccup) must not fail construction: the first Collect carries
		// forward instead. Only permanent errors (unknown VM) reject.
		if _, err := source.Sample(id); err != nil && !substrate.IsTransient(err) {
			return nil, fmt.Errorf("monitor: %w", err)
		}
	}
	noise := cfg.NoiseStd
	if noise == 0 {
		noise = 0.03
	}
	ids := make([]substrate.VMID, len(vmIDs))
	copy(ids, vmIDs)
	s := &Sampler{
		source:       source,
		vmIDs:        ids,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		noiseStd:     noise,
		res:          cfg.Resilience.withDefaults(),
		series:       make(map[substrate.VMID]*metrics.Series, len(ids)),
		lastGood:     make(map[substrate.VMID]metrics.Vector, len(ids)),
		haveGood:     make(map[substrate.VMID]bool, len(ids)),
		staleRun:     make(map[substrate.VMID]int, len(ids)),
		stuckRun:     make(map[substrate.VMID]int, len(ids)),
		ingested:     cfg.Telemetry.Counter("monitor.samples.ingested"),
		carried:      cfg.Telemetry.Counter("monitor.samples.carried_forward"),
		sanitized:    cfg.Telemetry.Counter("monitor.samples.sanitized"),
		stuckSamples: cfg.Telemetry.Counter("monitor.samples.stuck"),
		droppedStale: cfg.Telemetry.Counter("monitor.samples.dropped_stale"),
	}
	for _, id := range ids {
		if cfg.WindowSamples > 0 {
			sr, err := metrics.NewBoundedSeries(cfg.WindowSamples)
			if err != nil {
				return nil, fmt.Errorf("monitor: %w", err)
			}
			s.series[id] = sr
		} else {
			s.series[id] = metrics.NewSeries(512)
		}
	}
	return s, nil
}

// VMIDs returns the monitored VM IDs.
func (s *Sampler) VMIDs() []substrate.VMID {
	out := make([]substrate.VMID, len(s.vmIDs))
	copy(out, s.vmIDs)
	return out
}

// Series returns the sample series of a VM.
func (s *Sampler) Series(id substrate.VMID) (*metrics.Series, error) {
	sr, ok := s.series[id]
	if !ok {
		return nil, fmt.Errorf("monitor: VM %q is not monitored", id)
	}
	return sr, nil
}

// Advance moves the metric source to now; call once per simulated
// second (load averages and replay cursors integrate faster than the
// sampling interval).
func (s *Sampler) Advance(now simclock.Time) {
	s.source.Advance(now)
}

// sampleOne runs the full per-VM sampling pipeline — source read,
// transient carry-forward, sanitization, stuck/staleness accounting,
// measurement noise — and returns the noised vector plus whether the VM
// is within its staleness budget (i.e. the sample should be recorded to
// the training series). It is the shared body of Collect and
// CollectColumnar; the two differ only in where the vectors land, so
// factoring it here keeps the batch path byte-identical to the per-VM
// path (including the sequential RNG draws noise consumes).
func (s *Sampler) sampleOne(id substrate.VMID) (metrics.Vector, bool, error) {
	clean, err := s.source.Sample(id)
	synthesized := false
	if err != nil {
		if !substrate.IsTransient(err) {
			return metrics.Vector{}, false, fmt.Errorf("monitor: collect %q: %w", id, err)
		}
		// Transient gap: carry the last known-good vector forward
		// (zero vector before the first good sample — sanitization
		// fallbacks have nothing better yet either).
		clean = s.lastGood[id]
		synthesized = true
		s.carried.Inc()
	}
	clean, repaired := SanitizeVector(clean, s.lastGood[id])
	if repaired > 0 {
		s.sanitized.Add(int64(repaired))
	}

	// Staleness accounting: a synthesized sample is stale by
	// definition; a successfully read one may still be stale if the
	// sensor is frozen on one bitwise-identical vector.
	stale := synthesized
	if !synthesized && s.res.StuckThreshold > 0 {
		if s.haveGood[id] && clean == s.lastGood[id] {
			s.stuckRun[id]++
		} else {
			s.stuckRun[id] = 0
		}
		if s.stuckRun[id] >= s.res.StuckThreshold {
			stale = true
			s.stuckSamples.Inc()
		}
	}
	if stale {
		s.staleRun[id]++
	} else {
		s.staleRun[id] = 0
	}
	if !synthesized {
		s.lastGood[id] = clean
		s.haveGood[id] = true
	}

	var v metrics.Vector
	for _, a := range noiseOrder {
		v.Set(a, s.noisy(clean.Get(a)))
	}
	return v, s.staleRun[id] <= s.res.MaxStaleTicks, nil
}

// Collect samples every monitored VM at the given instant, labels the
// samples with the current SLO state, and appends them to the per-VM
// series. The labeled samples are returned keyed by VM — every
// monitored VM is present in the map even when its source sample had to
// be synthesized by carry-forward.
func (s *Sampler) Collect(now simclock.Time, label metrics.Label) (map[substrate.VMID]metrics.Sample, error) {
	out := make(map[substrate.VMID]metrics.Sample, len(s.vmIDs))
	ingested := 0
	for _, id := range s.vmIDs {
		v, record, err := s.sampleOne(id)
		if err != nil {
			return nil, err
		}
		sample := metrics.Sample{Time: now, Values: v, Label: label}
		if record {
			if err := s.series[id].Append(sample); err != nil {
				return nil, fmt.Errorf("monitor: append %q: %w", id, err)
			}
			ingested++
		} else {
			// Past the staleness budget: the loop still gets a value,
			// but the training series stops recording the flat line.
			s.droppedStale.Inc()
		}
		out[id] = sample
	}
	s.ingested.Add(int64(ingested))
	return out, nil
}

// CollectColumnar is Collect's struct-of-arrays counterpart: the same
// per-VM sampling pipeline, in the same VM and RNG order, but the noised
// vectors are staged into the columnar store (VM i of the store is
// s.vmIDs[i]) and published as one committed tick instead of being
// boxed into a per-tick map. Training-series appends, staleness
// accounting, and telemetry are identical to Collect, so a seeded run
// produces byte-identical state through either entry point.
func (s *Sampler) CollectColumnar(now simclock.Time, label metrics.Label, st *columnar.Store) error {
	if st.VMs() != len(s.vmIDs) {
		return fmt.Errorf("monitor: columnar store holds %d VMs, sampler monitors %d", st.VMs(), len(s.vmIDs))
	}
	ingested := 0
	for i, id := range s.vmIDs {
		v, record, err := s.sampleOne(id)
		if err != nil {
			return err
		}
		st.StageRow(i, &v)
		if record {
			if err := s.series[id].Append(metrics.Sample{Time: now, Values: v, Label: label}); err != nil {
				return fmt.Errorf("monitor: append %q: %w", id, err)
			}
			ingested++
		} else {
			s.droppedStale.Inc()
		}
	}
	st.Commit(now, label)
	s.ingested.Add(int64(ingested))
	return nil
}

// StaleTicks returns how many consecutive sampling ticks the VM's
// sample has been synthesized or judged sensor-stuck (0 for a healthy
// source).
func (s *Sampler) StaleTicks(id substrate.VMID) int { return s.staleRun[id] }

// Recording reports whether the VM's samples are currently inside the
// staleness budget and thus being appended to its training series. The
// control loop's incremental trainer mirrors this gate: samples the
// series refuses are fed to the classifier statistics as unlabeled, so
// a frozen sensor cannot teach the model a flat line.
func (s *Sampler) Recording(id substrate.VMID) bool {
	return s.staleRun[id] <= s.res.MaxStaleTicks
}

func (s *Sampler) noisy(value float64) float64 {
	if s.noiseStd < 0 {
		return value
	}
	v := value * (1 + s.rng.NormFloat64()*s.noiseStd)
	if v < 0 {
		v = 0
	}
	return v
}

// Dataset bundles each VM's labeled series for offline (trace-driven)
// experiments, sorted by VM ID for determinism.
func (s *Sampler) Dataset() map[substrate.VMID][]metrics.Sample {
	out := make(map[substrate.VMID][]metrics.Sample, len(s.series))
	ids := make([]string, 0, len(s.series))
	for id := range s.series {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		out[substrate.VMID(id)] = s.series[substrate.VMID(id)].All()
	}
	return out
}
