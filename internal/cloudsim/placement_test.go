package cloudsim

import (
	"errors"
	"math"
	"testing"

	"prepare/internal/simclock"
	"prepare/internal/substrate"
)

// assertMirror checks that the placement inventory agrees with the
// cluster's own free-capacity accounting on every host.
func assertMirror(t *testing.T, c *Cluster, s *Substrate) {
	t.Helper()
	inv := s.PlacementInventory()
	for _, h := range c.Hosts() {
		cpu, mem, ok := inv.Free(h.ID)
		if !ok {
			t.Fatalf("mirror missing host %s", h.ID)
		}
		if math.Abs(cpu-h.FreeCPU()) > 1e-9 || math.Abs(mem-h.FreeMemMB()) > 1e-9 {
			t.Fatalf("mirror drift on %s: mirror %.3f/%.3f cluster %.3f/%.3f",
				h.ID, cpu, mem, h.FreeCPU(), h.FreeMemMB())
		}
	}
	if err := inv.Damaged(); err != nil {
		t.Fatalf("mirror damaged: %v", err)
	}
}

func TestPlacementInventoryMirrorsCluster(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddHostInDomain("h1", "rack1", 200, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHostInDomain("h2", "rack2", 200, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceVM("vm1", "h1", 50, 512); err != nil {
		t.Fatal(err)
	}
	s, err := NewSubstrate(c, []VMID{"vm1"})
	if err != nil {
		t.Fatal(err)
	}

	// The lazy build snapshots the pre-existing fleet.
	inv := s.PlacementInventory()
	if inv.NumHosts() != 2 || inv.NumVMs() != 1 {
		t.Fatalf("snapshot = %d hosts / %d VMs, want 2/1", inv.NumHosts(), inv.NumVMs())
	}
	if inv != s.PlacementInventory() {
		t.Fatalf("PlacementInventory must return the same mirror")
	}
	v, _ := inv.View("h1")
	if v.Domain != "rack1" {
		t.Fatalf("domain = %q, want rack1", v.Domain)
	}
	assertMirror(t, c, s)

	// Post-build changes flow through the listener.
	now := simclock.Time(0)
	if _, err := c.AddDefaultHost("h3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceVM("vm2", "h2", 40, 256); err != nil {
		t.Fatal(err)
	}
	if err := c.ScaleCPU(now, "vm1", 80); err != nil {
		t.Fatal(err)
	}
	if err := c.ScaleMem(now, "vm1", 1024); err != nil {
		t.Fatal(err)
	}
	assertMirror(t, c, s)

	// An explicit-target migration reserves on the target until it
	// completes, then the VM lands with its post-migration allocation.
	if err := s.MigrateTo(now, "vm1", "h3", 120, 1024); err != nil {
		t.Fatal(err)
	}
	assertMirror(t, c, s)
	if host, _ := inv.HostOf("vm1"); host != "h1" {
		t.Fatalf("vm1 still on h1 mid-flight, mirror says %s", host)
	}
	for tick := int64(1); tick <= MigrationSeconds(1024)+1; tick++ {
		c.Tick(simclock.Time(tick))
	}
	assertMirror(t, c, s)
	if host, _ := inv.HostOf("vm1"); host != "h3" {
		t.Fatalf("vm1 on %s after completion, want h3", host)
	}
	cpu, mem, _ := inv.VMAlloc("vm1")
	if cpu != 120 || mem != 1024 {
		t.Fatalf("vm1 alloc = %v/%v, want 120/1024", cpu, mem)
	}

	// Substrate-chosen migration flows through the same events.
	if err := c.Migrate(simclock.Time(100), "vm2", 60, 256); err != nil {
		t.Fatal(err)
	}
	assertMirror(t, c, s)
	for tick := int64(101); tick <= 100+MigrationSeconds(256)+1; tick++ {
		c.Tick(simclock.Time(tick))
	}
	assertMirror(t, c, s)
}

func TestMigrateToValidatesTarget(t *testing.T) {
	c := NewCluster()
	if _, err := c.AddHost("h1", 200, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("h2", 200, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceVM("vm1", "h1", 50, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceVM("hog", "h2", 100, 512); err != nil {
		t.Fatal(err)
	}
	now := simclock.Time(0)
	if err := c.MigrateTo(now, "vm1", "nope", 50, 512); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("unknown target: err = %v, want ErrNoSuchHost", err)
	}
	if err := c.MigrateTo(now, "vm1", "h1", 50, 512); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("current host: err = %v, want ErrInsufficient", err)
	}
	if err := c.MigrateTo(now, "vm1", "h2", 150, 512); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("full target: err = %v, want ErrInsufficient", err)
	}
	if err := c.MigrateTo(now, "vm1", "h2", 20, 512); err != nil {
		t.Fatalf("fitting target: %v", err)
	}
	// Desired allocations clamp up to the current ones, like Migrate.
	vm, _ := c.VM("vm1")
	if vm.migrateCPU != 50 {
		t.Fatalf("migrateCPU = %v, want clamped 50", vm.migrateCPU)
	}
	if err := c.MigrateTo(now, "vm1", "h2", 50, 512); !errors.Is(err, ErrMigrating) {
		t.Fatalf("in flight: err = %v, want ErrMigrating", err)
	}
	var _ substrate.TargetedActuator = (*Substrate)(nil)
}
