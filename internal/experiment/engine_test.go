package experiment

import (
	"strings"
	"testing"

	"prepare/internal/control"
	"prepare/internal/faults"
	"prepare/internal/prevent"
)

func TestMultiTenant(t *testing.T) {
	base := Scenario{App: RUBiS, Fault: faults.CPUHog, Scheme: control.SchemePREPARE, Seed: 10}
	ts := MultiTenant(3, base)
	if len(ts) != 3 {
		t.Fatalf("got %d tenants", len(ts))
	}
	for i, tn := range ts {
		if tn.Scenario.Seed != 10+int64(i) {
			t.Errorf("tenant %d seed = %d", i, tn.Scenario.Seed)
		}
		if tn.ID == "" || (i > 0 && tn.ID == ts[i-1].ID) {
			t.Errorf("tenant %d ID = %q", i, tn.ID)
		}
	}
}

func TestRunEngineValidation(t *testing.T) {
	if _, err := RunEngine(nil, EngineOptions{}); err == nil {
		t.Error("no tenants should fail")
	}
	dup := []TenantScenario{
		{ID: "a", Scenario: Scenario{App: RUBiS, Fault: faults.CPUHog, Scheme: control.SchemeNone, Seed: 1}},
		{ID: "a", Scenario: Scenario{App: RUBiS, Fault: faults.CPUHog, Scheme: control.SchemeNone, Seed: 2}},
	}
	if _, err := RunEngine(dup, EngineOptions{}); err == nil {
		t.Error("duplicate tenant IDs should fail")
	}
	bad := []TenantScenario{{ID: "a", Scenario: Scenario{App: AppKind(99), Seed: 1}}}
	if _, err := RunEngine(bad, EngineOptions{}); err == nil || !strings.Contains(err.Error(), "tenant a") {
		t.Errorf("invalid scenario error = %v, want it to name tenant a", err)
	}
}

// TestRunEngineMatchesSerialRuns: each tenant's engine outcome must be
// bit-identical to running its scenario alone with Run — co-tenancy
// changes nothing because tenants share no state.
func TestRunEngineMatchesSerialRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine runs in -short mode")
	}
	tenants := []TenantScenario{
		{ID: "t1", Scenario: Scenario{App: RUBiS, Fault: faults.MemoryLeak, Scheme: control.SchemePREPARE, Seed: 21}},
		{ID: "t2", Scenario: Scenario{App: SystemS, Fault: faults.CPUHog, Scheme: control.SchemeReactive, Seed: 22}},
		{ID: "t3", Scenario: Scenario{App: RUBiS, Fault: faults.Bottleneck, Scheme: control.SchemePREPARE, Seed: 23,
			Policy: prevent.MigrationOnly}},
	}
	res, err := RunEngine(tenants, EngineOptions{Shards: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != len(tenants) {
		t.Fatalf("got %d tenant results", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		serial, err := Run(tr.Scenario)
		if err != nil {
			t.Fatalf("serial %s: %v", tr.Tenant, err)
		}
		if tr.EvalViolationSeconds != serial.EvalViolationSeconds ||
			tr.TotalViolationSeconds != serial.TotalViolationSeconds {
			t.Errorf("%s: violation %d/%d != serial %d/%d", tr.Tenant,
				tr.EvalViolationSeconds, tr.TotalViolationSeconds,
				serial.EvalViolationSeconds, serial.TotalViolationSeconds)
		}
		if len(tr.Alerts) != len(serial.Alerts) {
			t.Errorf("%s: %d alerts != serial %d", tr.Tenant, len(tr.Alerts), len(serial.Alerts))
		} else {
			for i := range tr.Alerts {
				if tr.Alerts[i] != serial.Alerts[i] {
					t.Errorf("%s: alert %d differs: %+v vs %+v", tr.Tenant, i, tr.Alerts[i], serial.Alerts[i])
					break
				}
			}
		}
		if len(tr.Steps) != len(serial.Steps) {
			t.Errorf("%s: %d steps != serial %d", tr.Tenant, len(tr.Steps), len(serial.Steps))
		} else {
			for i := range tr.Steps {
				if tr.Steps[i] != serial.Steps[i] {
					t.Errorf("%s: step %d differs: %+v vs %+v", tr.Tenant, i, tr.Steps[i], serial.Steps[i])
					break
				}
			}
		}
	}
}

// TestRunEngineDeterministicAcrossShardCounts: the merged aggregate
// streams are byte-identical for any shard/worker count.
func TestRunEngineDeterministicAcrossShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine runs in -short mode")
	}
	base := Scenario{App: RUBiS, Fault: faults.MemoryLeak, Scheme: control.SchemePREPARE, Seed: 50}
	run := func(shards, workers int) EngineResult {
		res, err := RunEngine(MultiTenant(4, base), EngineOptions{Shards: shards, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1, 1)
	r4 := run(4, 2)
	if len(r1.Alerts) == 0 {
		t.Fatal("no alerts; determinism check is vacuous")
	}
	if len(r1.Alerts) != len(r4.Alerts) {
		t.Fatalf("alert counts differ: %d vs %d", len(r1.Alerts), len(r4.Alerts))
	}
	for i := range r1.Alerts {
		if r1.Alerts[i] != r4.Alerts[i] {
			t.Errorf("alert %d differs: %+v vs %+v", i, r1.Alerts[i], r4.Alerts[i])
		}
	}
	if len(r1.Steps) != len(r4.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(r1.Steps), len(r4.Steps))
	}
	for i := range r1.Steps {
		if r1.Steps[i] != r4.Steps[i] {
			t.Errorf("step %d differs: %+v vs %+v", i, r1.Steps[i], r4.Steps[i])
		}
	}
	s1, s4 := r1.Stats, r4.Stats
	s1.Shards, s4.Shards = 0, 0
	if s1 != s4 {
		t.Errorf("stats differ: %+v vs %+v", s1, s4)
	}
}
