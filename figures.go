package prepare

import (
	"io"

	"prepare/internal/experiment"
)

// Figure6 reproduces the paper's Figure 6: SLO violation time for every
// application × fault × scheme cell using elastic resource scaling as
// the prevention action, over `seeds` repetitions starting at baseSeed.
func Figure6(seeds int, baseSeed int64) ([]ViolationCell, error) {
	return experiment.FigureSLOViolation(ScalingFirst, seeds, baseSeed)
}

// Figure8 reproduces Figure 8: the same comparison with live VM
// migration as the prevention action.
func Figure8(seeds int, baseSeed int64) ([]ViolationCell, error) {
	return experiment.FigureSLOViolation(MigrationOnly, seeds, baseSeed)
}

// Figure7 reproduces one subplot of Figure 7: the sampled SLO metric
// traces of the three schemes around the second fault injection, with
// elastic resource scaling as the prevention action.
func Figure7(app AppKind, fault FaultKind, seed int64) ([]TraceSeries, error) {
	return experiment.FigureTraces(app, fault, ScalingFirst, seed)
}

// Figure9 reproduces one subplot of Figure 9: the trace comparison with
// live VM migration as the prevention action.
func Figure9(app AppKind, fault FaultKind, seed int64) ([]TraceSeries, error) {
	return experiment.FigureTraces(app, fault, MigrationOnly, seed)
}

// Figure10 reproduces one subplot of Figure 10: prediction accuracy of
// the per-component scheme versus the monolithic model.
func Figure10(app AppKind, fault FaultKind, seed int64) ([]AccuracyCurve, error) {
	return experiment.FigurePerComponentVsMonolithic(app, fault, seed)
}

// Figure11 reproduces one subplot of Figure 11: the 2-dependent Markov
// model versus the simple Markov model.
func Figure11(app AppKind, fault FaultKind, seed int64) ([]AccuracyCurve, error) {
	return experiment.FigureMarkovComparison(app, fault, seed)
}

// Figure12 reproduces Figure 12: accuracy under k=1,2,3 of W=4 false
// alarm filtering for a bottleneck fault in RUBiS.
func Figure12(seed int64) ([]AccuracyCurve, error) {
	return experiment.FigureAlarmFiltering(seed)
}

// Figure13 reproduces Figure 13: accuracy under 1, 5, and 10 second
// sampling intervals for a bottleneck fault in RUBiS.
func Figure13(seed int64) ([]AccuracyCurve, error) {
	return experiment.FigureSamplingInterval(seed)
}

// FormatViolationCells renders Figure 6/8 cells as a text table.
func FormatViolationCells(title string, cells []ViolationCell) string {
	return experiment.FormatViolationCells(title, cells)
}

// FormatTraces renders Figure 7/9 trace series as a text table, sampling
// every stride seconds.
func FormatTraces(title, metricName string, series []TraceSeries, stride int64) string {
	return experiment.FormatTraces(title, metricName, series, stride)
}

// FormatAccuracyCurves renders Figure 10-13 accuracy curves as a text
// table.
func FormatAccuracyCurves(title string, curves []AccuracyCurve) string {
	return experiment.FormatAccuracyCurves(title, curves)
}

// Table1Row is one row of the paper's overhead table (Table I).
type Table1Row = experiment.Table1Row

// Table1 measures the CPU cost of each PREPARE module over the given
// number of timing rounds, mirroring the paper's Table I.
func Table1(rounds int) ([]Table1Row, error) {
	return experiment.Table1(rounds)
}

// FormatTable1 renders Table I rows as a text table.
func FormatTable1(rows []Table1Row) string {
	return experiment.FormatTable1(rows)
}

// WriteAccuracyCSV dumps accuracy curves as plotting-ready CSV.
func WriteAccuracyCSV(w io.Writer, curves []AccuracyCurve) error {
	return experiment.WriteAccuracyCSV(w, curves)
}

// WriteTraceCSV dumps trace series as plotting-ready CSV.
func WriteTraceCSV(w io.Writer, series []TraceSeries) error {
	return experiment.WriteTraceCSV(w, series)
}

// WriteViolationCSV dumps Figure 6/8 cells as CSV.
func WriteViolationCSV(w io.Writer, cells []ViolationCell) error {
	return experiment.WriteViolationCSV(w, cells)
}

// ReportOptions tunes WriteReport.
type ReportOptions = experiment.ReportOptions

// WriteReport runs the paper's full evaluation and writes a markdown
// report covering every figure and table — the one-command
// reproducibility artifact.
func WriteReport(w io.Writer, opts ReportOptions) error {
	return experiment.WriteReport(w, opts)
}

// WriteViolationSVG renders Figure 6/8 cells as a grouped bar chart SVG.
func WriteViolationSVG(w io.Writer, title string, cells []ViolationCell) error {
	return experiment.WriteViolationSVG(w, title, cells)
}

// WriteAccuracySVG renders accuracy curves as a line chart SVG.
func WriteAccuracySVG(w io.Writer, title string, curves []AccuracyCurve) error {
	return experiment.WriteAccuracySVG(w, title, curves)
}

// WriteTraceSVG renders trace series as a line chart SVG.
func WriteTraceSVG(w io.Writer, title, metricName string, series []TraceSeries) error {
	return experiment.WriteTraceSVG(w, title, metricName, series)
}
