// Package wire defines the binary columnar batch format the controller
// service's ingest path speaks alongside HTTP/JSON. A frame carries one
// tenant's batch of VM metric samples already laid out the way
// internal/columnar wants them — one packed little-endian float64
// column per monitored attribute — so the server decodes straight into
// reusable column slices instead of unmarshalling one JSON object per
// sample into row structs.
//
// Frame layout (version 1; all fixed-width integers little-endian,
// varints are encoding/binary uvarint/varint):
//
//	u32     payload length (bytes after this prefix)
//	"PCB"   magic
//	u8      version (1)
//	u8      flags (bit0: tick column is zigzag-varint delta encoded)
//	uvarint tenant length, then tenant bytes
//	uvarint tickFirst   — smallest sample time in the batch, seconds
//	uvarint tickLast    — largest sample time in the batch, seconds
//	uvarint nVMs, then nVMs × (uvarint length + bytes)   — VM-ID dictionary
//	uvarint nAttrs      — must equal metrics.NumAttributes
//	uvarint nRows
//	vm column:    nRows × uvarint            — dictionary index per row
//	tick column:  delta: nRows × varint      — row 0 relative to tickFirst,
//	                                           then row-to-row deltas
//	              raw:   nRows × u64         — absolute seconds
//	label column: nRows × u8                 — metrics.Label values
//	body:         nAttrs × nRows × u64       — float64 bits, one packed
//	                                           column per attribute
//
// The header is self-describing enough for a decoder to reject frames
// from a different schema (version, attribute count) before touching
// the body, and the tick range doubles as a validity bound: every
// decoded tick must fall inside [tickFirst, tickLast].
//
// Encoding appends to a caller-owned buffer and decoding fills a
// caller-owned Arena, so both directions are allocation-free in steady
// state; decoded Tenant and VM-ID byte slices alias the input frame,
// which therefore must outlive the decoded Batch.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"prepare/internal/metrics"
)

// ContentType is the HTTP media type for a single columnar frame body
// (and, on the streaming endpoint, a sequence of length-prefixed
// frames).
const ContentType = "application/x-prepare-columnar"

// Version is the wire format version this package encodes.
const Version = 1

const (
	// flagDeltaTicks marks the tick column as zigzag-varint deltas
	// instead of raw 8-byte seconds.
	flagDeltaTicks = 1 << 0

	// magic are the first payload bytes of every frame.
	magic = "PCB"

	// prefixLen is the length-prefix size framing a payload.
	prefixLen = 4

	// minPayload is the smallest structurally possible payload: magic,
	// version, flags, and seven varints that are at least one byte each.
	minPayload = len(magic) + 2 + 7
)

// DefaultMaxFrameBytes bounds a frame payload when the caller does not
// say otherwise (16 MiB — roughly 150k samples).
const DefaultMaxFrameBytes = 16 << 20

// ErrFrame is wrapped by every decode error: the frame is malformed,
// truncated, from an unsupported version, or self-inconsistent.
var ErrFrame = errors.New("wire: malformed frame")

// ErrFrameTooLarge is returned by ReadFrame when the length prefix
// exceeds the configured bound — the streaming peer is either corrupt
// or hostile, and the connection should be dropped.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")

// Batch is one tenant's columnar sample batch: the decoded view of a
// frame, and the builder the encoder consumes. Row i is the sample
// (VMs[VMIdx[i]], Times[i], Labels[i], Cols[*][i]). Decoded Tenant and
// VMs alias the frame buffer.
type Batch struct {
	Tenant []byte
	// VMs is the VM-ID dictionary; VMIdx indexes into it.
	VMs [][]byte
	// TickFirst and TickLast bound Times (inclusive).
	TickFirst, TickLast int64

	VMIdx  []uint32
	Times  []int64
	Labels []metrics.Label
	// Cols holds one packed column per attribute: Cols[a][i] is
	// attribute a of row i.
	Cols [metrics.NumAttributes][]float64
}

// Rows returns the number of samples in the batch.
func (b *Batch) Rows() int { return len(b.Times) }

// Reset empties the batch for reuse, keeping every backing array.
func (b *Batch) Reset(tenant []byte) {
	b.Tenant = tenant
	b.VMs = b.VMs[:0]
	b.TickFirst, b.TickLast = 0, 0
	b.VMIdx = b.VMIdx[:0]
	b.Times = b.Times[:0]
	b.Labels = b.Labels[:0]
	for a := range b.Cols {
		b.Cols[a] = b.Cols[a][:0]
	}
}

// AddVM appends a dictionary entry and returns its index.
func (b *Batch) AddVM(id []byte) int {
	b.VMs = append(b.VMs, id)
	return len(b.VMs) - 1
}

// Add appends one sample row. values must hold metrics.NumAttributes
// elements in Attribute.Index order.
func (b *Batch) Add(vmIdx int, t int64, label metrics.Label, values []float64) {
	b.VMIdx = append(b.VMIdx, uint32(vmIdx))
	b.Times = append(b.Times, t)
	b.Labels = append(b.Labels, label)
	_ = values[metrics.NumAttributes-1]
	for a := range b.Cols {
		b.Cols[a] = append(b.Cols[a], values[a])
	}
}

// EncodeOptions tunes AppendBatchOptions.
type EncodeOptions struct {
	// RawTicks disables the varint delta encoding of the tick column,
	// writing absolute 8-byte seconds instead.
	RawTicks bool
}

// AppendBatch appends one length-prefixed frame encoding b to dst and
// returns the extended buffer, using delta-encoded ticks. It allocates
// only when dst lacks capacity.
func AppendBatch(dst []byte, b *Batch) ([]byte, error) {
	return AppendBatchOptions(dst, b, EncodeOptions{})
}

// AppendBatchOptions is AppendBatch with explicit encoding options.
func AppendBatchOptions(dst []byte, b *Batch, o EncodeOptions) ([]byte, error) {
	if len(b.Tenant) == 0 {
		return dst, errors.New("wire: tenant is required")
	}
	n := b.Rows()
	if n == 0 {
		return dst, errors.New("wire: batch has no rows")
	}
	if len(b.VMIdx) != n || len(b.Labels) != n {
		return dst, fmt.Errorf("wire: column lengths disagree (%d times, %d vms, %d labels)", n, len(b.VMIdx), len(b.Labels))
	}
	for a := range b.Cols {
		if len(b.Cols[a]) != n {
			return dst, fmt.Errorf("wire: attribute column %d has %d rows, want %d", a, len(b.Cols[a]), n)
		}
	}
	if len(b.VMs) == 0 {
		return dst, errors.New("wire: VM dictionary is empty")
	}
	for i, id := range b.VMs {
		if len(id) == 0 {
			return dst, fmt.Errorf("wire: VM dictionary entry %d is empty", i)
		}
	}
	first, last := b.Times[0], b.Times[0]
	for _, t := range b.Times {
		if t < 0 {
			return dst, fmt.Errorf("wire: negative sample time %d", t)
		}
		if t < first {
			first = t
		}
		if t > last {
			last = t
		}
	}
	for i, v := range b.VMIdx {
		if int(v) >= len(b.VMs) {
			return dst, fmt.Errorf("wire: row %d VM index %d out of range [0,%d)", i, v, len(b.VMs))
		}
	}
	for i, l := range b.Labels {
		if l != metrics.LabelUnknown && l != metrics.LabelNormal && l != metrics.LabelAbnormal {
			return dst, fmt.Errorf("wire: row %d has invalid label %d", i, int(l))
		}
	}

	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, magic...)
	flags := byte(flagDeltaTicks)
	if o.RawTicks {
		flags = 0
	}
	dst = append(dst, Version, flags)
	dst = appendUvarint(dst, uint64(len(b.Tenant)))
	dst = append(dst, b.Tenant...)
	dst = appendUvarint(dst, uint64(first))
	dst = appendUvarint(dst, uint64(last))
	dst = appendUvarint(dst, uint64(len(b.VMs)))
	for _, id := range b.VMs {
		dst = appendUvarint(dst, uint64(len(id)))
		dst = append(dst, id...)
	}
	dst = appendUvarint(dst, uint64(metrics.NumAttributes))
	dst = appendUvarint(dst, uint64(n))
	for _, v := range b.VMIdx {
		dst = appendUvarint(dst, uint64(v))
	}
	if o.RawTicks {
		for _, t := range b.Times {
			dst = appendU64(dst, uint64(t))
		}
	} else {
		prev := first
		for _, t := range b.Times {
			dst = appendVarint(dst, t-prev)
			prev = t
		}
	}
	for _, l := range b.Labels {
		dst = append(dst, byte(l))
	}
	for a := range b.Cols {
		for _, v := range b.Cols[a] {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}

	payload := len(dst) - start - prefixLen
	if payload > math.MaxUint32 {
		return dst[:start], fmt.Errorf("wire: %d-byte payload exceeds the frame limit", payload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	return dst, nil
}

// Arena owns the reusable decode scratch. A zero Arena is ready; after
// the first few decodes, DecodeBatch into the same Arena allocates
// nothing. The decoded Batch is valid until the next DecodeBatch with
// the same Arena (and no longer than the frame buffer it aliases).
type Arena struct {
	batch Batch
}

// Batch returns the Arena's most recently decoded batch.
func (a *Arena) Batch() *Batch { return &a.batch }

// decoder walks a payload.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("%w: truncated (need %d bytes, have %d)", ErrFrame, n, d.remaining())
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrFrame, d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrFrame, d.off)
	}
	d.off += n
	return v, nil
}

// DecodeBatch decodes one frame payload (the bytes after the length
// prefix) into the Arena and returns the Arena's batch view. Decoded
// Tenant and VM-ID slices alias payload. Every validation failure wraps
// ErrFrame.
func DecodeBatch(payload []byte, a *Arena) (*Batch, error) {
	if len(payload) < minPayload {
		return nil, fmt.Errorf("%w: %d-byte payload is shorter than any frame", ErrFrame, len(payload))
	}
	d := decoder{buf: payload}
	m, _ := d.bytes(len(magic))
	if string(m) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFrame, m)
	}
	hdr, _ := d.bytes(2)
	if hdr[0] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrFrame, hdr[0], Version)
	}
	flags := hdr[1]
	if flags&^byte(flagDeltaTicks) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrFrame, flags)
	}
	deltaTicks := flags&flagDeltaTicks != 0

	b := &a.batch
	tn, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if tn == 0 {
		return nil, fmt.Errorf("%w: empty tenant", ErrFrame)
	}
	if b.Tenant, err = d.bytes(int(tn)); err != nil {
		return nil, err
	}
	tickFirst, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	tickLast, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if tickFirst > tickLast || tickLast > math.MaxInt64 {
		return nil, fmt.Errorf("%w: tick range [%d,%d] is invalid", ErrFrame, tickFirst, tickLast)
	}
	b.TickFirst, b.TickLast = int64(tickFirst), int64(tickLast)

	nVMs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each dictionary entry needs at least two bytes (length + one ID
	// byte), so the remaining payload bounds nVMs before any growth.
	if nVMs == 0 || nVMs > uint64(d.remaining()/2) {
		return nil, fmt.Errorf("%w: dictionary of %d VMs cannot fit in %d bytes", ErrFrame, nVMs, d.remaining())
	}
	b.VMs = growSlices(b.VMs, int(nVMs))
	for i := range b.VMs {
		ln, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if ln == 0 {
			return nil, fmt.Errorf("%w: dictionary entry %d is empty", ErrFrame, i)
		}
		if b.VMs[i], err = d.bytes(int(ln)); err != nil {
			return nil, err
		}
	}

	nAttrs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nAttrs != metrics.NumAttributes {
		return nil, fmt.Errorf("%w: %d attribute columns, want %d", ErrFrame, nAttrs, metrics.NumAttributes)
	}
	nRows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Bound nRows by the cheapest possible encoding of what must still
	// follow — one byte each for VM index, tick delta, and label, plus
	// the 8-byte attribute columns — before growing the arena.
	minRow := 3
	if !deltaTicks {
		minRow = 2 + 8
	}
	minRow += 8 * metrics.NumAttributes
	if nRows == 0 || nRows > uint64(d.remaining()/minRow) {
		return nil, fmt.Errorf("%w: %d rows cannot fit in %d bytes", ErrFrame, nRows, d.remaining())
	}
	n := int(nRows)
	b.VMIdx = growU32(b.VMIdx, n)
	b.Times = growI64(b.Times, n)
	b.Labels = growLabels(b.Labels, n)
	for a := range b.Cols {
		b.Cols[a] = growF64(b.Cols[a], n)
	}

	for i := 0; i < n; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= nVMs {
			return nil, fmt.Errorf("%w: row %d VM index %d out of range [0,%d)", ErrFrame, i, v, nVMs)
		}
		b.VMIdx[i] = uint32(v)
	}
	if deltaTicks {
		prev := b.TickFirst
		for i := 0; i < n; i++ {
			dv, err := d.varint()
			if err != nil {
				return nil, err
			}
			t := prev + dv
			if t < b.TickFirst || t > b.TickLast {
				return nil, fmt.Errorf("%w: row %d tick %d outside range [%d,%d]", ErrFrame, i, t, b.TickFirst, b.TickLast)
			}
			b.Times[i] = t
			prev = t
		}
	} else {
		raw, err := d.bytes(8 * n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			t := int64(binary.LittleEndian.Uint64(raw[8*i:]))
			if t < b.TickFirst || t > b.TickLast {
				return nil, fmt.Errorf("%w: row %d tick %d outside range [%d,%d]", ErrFrame, i, t, b.TickFirst, b.TickLast)
			}
			b.Times[i] = t
		}
	}
	labels, err := d.bytes(n)
	if err != nil {
		return nil, err
	}
	for i, l := range labels {
		if l > byte(metrics.LabelAbnormal) {
			return nil, fmt.Errorf("%w: row %d has invalid label %d", ErrFrame, i, l)
		}
		b.Labels[i] = metrics.Label(l)
	}
	for a := range b.Cols {
		raw, err := d.bytes(8 * n)
		if err != nil {
			return nil, err
		}
		col := b.Cols[a]
		for i := 0; i < n; i++ {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, d.remaining())
	}
	return b, nil
}

// ReadFrame reads one length-prefixed frame from r into buf (growing it
// only when capacity is short) and returns the payload slice. A clean
// io.EOF before any prefix byte means the stream ended at a frame
// boundary; EOF inside a frame surfaces as io.ErrUnexpectedEOF. A
// prefix larger than maxBytes (<= 0 uses DefaultMaxFrameBytes) returns
// ErrFrameTooLarge without consuming the payload.
func ReadFrame(r io.Reader, buf []byte, maxBytes int) ([]byte, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFrameBytes
	}
	var prefix [prefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return buf[:0], io.EOF
		}
		return buf[:0], io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(prefix[:]))
	if n > maxBytes {
		return buf[:0], fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, n, maxBytes)
	}
	if n < minPayload {
		return buf[:0], fmt.Errorf("%w: %d-byte payload is shorter than any frame", ErrFrame, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf[:0], io.ErrUnexpectedEOF
	}
	return buf, nil
}

// Payload strips and checks the length prefix of a buffer holding
// exactly one frame (the shape of a POST body).
func Payload(frame []byte) ([]byte, error) {
	if len(frame) < prefixLen+minPayload {
		return nil, fmt.Errorf("%w: %d-byte frame is shorter than any frame", ErrFrame, len(frame))
	}
	n := int(binary.LittleEndian.Uint32(frame))
	if n != len(frame)-prefixLen {
		return nil, fmt.Errorf("%w: length prefix %d does not match %d payload bytes", ErrFrame, n, len(frame)-prefixLen)
	}
	return frame[prefixLen:], nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutVarint(tmp[:], v)]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

func growSlices(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		return make([][]byte, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growLabels(s []metrics.Label, n int) []metrics.Label {
	if cap(s) < n {
		return make([]metrics.Label, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
