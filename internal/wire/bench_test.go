package wire

import (
	"encoding/json"
	"fmt"
	"testing"

	"prepare/internal/metrics"
)

// BenchmarkIngestDecode measures the binary batch decode hot path —
// one 512-row frame into a reused Arena — and reports ingest
// samples/sec. The CI bench gate pins allocs/op at 0 and samples/sec
// against the recorded baseline.
func BenchmarkIngestDecode(bm *testing.B) {
	var b Batch
	buildBatchBench(&b, 8, 512)
	frame, err := AppendBatch(nil, &b)
	if err != nil {
		bm.Fatal(err)
	}
	payload, err := Payload(frame)
	if err != nil {
		bm.Fatal(err)
	}
	var a Arena
	if _, err := DecodeBatch(payload, &a); err != nil {
		bm.Fatal(err)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if _, err := DecodeBatch(payload, &a); err != nil {
			bm.Fatal(err)
		}
	}
	bm.StopTimer()
	bm.ReportMetric(float64(b.Rows())*float64(bm.N)/bm.Elapsed().Seconds(), "samples/sec")
}

// jsonSample mirrors the server's JSON ingest schema so the comparison
// below measures exactly what the HTTP/JSON path pays per sample.
type jsonSample struct {
	VM     string    `json:"vm"`
	TimeS  int64     `json:"time_s"`
	Label  int       `json:"label,omitempty"`
	Values []float64 `json:"values"`
}

type jsonBatch struct {
	Tenant  string       `json:"tenant"`
	Samples []jsonSample `json:"samples"`
}

// BenchmarkIngestDecodeJSON decodes the same 512-row batch through
// encoding/json — the baseline the binary format replaces. Reported
// for the README comparison table; not gated.
func BenchmarkIngestDecodeJSON(bm *testing.B) {
	var b Batch
	buildBatchBench(&b, 8, 512)
	jb := jsonBatch{Tenant: "bench-tenant"}
	for i := 0; i < b.Rows(); i++ {
		vals := make([]float64, metrics.NumAttributes)
		for a := range b.Cols {
			vals[a] = b.Cols[a][i]
		}
		jb.Samples = append(jb.Samples, jsonSample{
			VM:     string(b.VMs[b.VMIdx[i]]),
			TimeS:  b.Times[i],
			Label:  int(b.Labels[i]),
			Values: vals,
		})
	}
	body, err := json.Marshal(jb)
	if err != nil {
		bm.Fatal(err)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		var got jsonBatch
		if err := json.Unmarshal(body, &got); err != nil {
			bm.Fatal(err)
		}
	}
	bm.StopTimer()
	bm.ReportMetric(float64(len(jb.Samples))*float64(bm.N)/bm.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkIngestEncode measures AppendBatch into a reused buffer.
func BenchmarkIngestEncode(bm *testing.B) {
	var b Batch
	buildBatchBench(&b, 8, 512)
	buf, err := AppendBatch(nil, &b)
	if err != nil {
		bm.Fatal(err)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		buf, err = AppendBatch(buf[:0], &b)
		if err != nil {
			bm.Fatal(err)
		}
	}
	bm.StopTimer()
	bm.ReportMetric(float64(b.Rows())*float64(bm.N)/bm.Elapsed().Seconds(), "samples/sec")
}

func buildBatchBench(b *Batch, nVMs, n int) {
	b.Reset([]byte("bench-tenant"))
	for v := 0; v < nVMs; v++ {
		b.AddVM([]byte(fmt.Sprintf("vm-%02d", v)))
	}
	var vals [metrics.NumAttributes]float64
	t := int64(1000)
	for i := 0; i < n; i++ {
		if i > 0 && i%nVMs == 0 {
			t += 5
		}
		for a := range vals {
			vals[a] = float64(i*31+a*7) * 0.125
		}
		b.Add(i%nVMs, t, metrics.LabelNormal, vals[:])
	}
}
